//! # dwrs-sim
//!
//! Deterministic in-process simulator for the **continuous, distributed,
//! streaming model** of the paper (Section 2.1): `k` sites, one coordinator,
//! synchronous rounds, FIFO channels, no loss, adversarial partitioning of a
//! globally ordered stream.
//!
//! The paper's cost metric is the number of messages, which is a counting
//! property of the protocol and independent of physical transport — so an
//! exact simulator is the faithful substrate (see DESIGN.md §5). The
//! simulator meters every upstream message and charges each coordinator
//! broadcast `k` messages, exactly as the paper accounts them.
//!
//! Two delivery modes:
//!
//! * **instant** (default) — a site's message is processed by the
//!   coordinator and any response is visible to all sites within the same
//!   round, matching the paper's synchronous round model;
//! * **delayed** — coordinator responses take a configurable number of
//!   rounds to arrive, leaving sites with stale thresholds/saturation bits.
//!   Protocol correctness must be unaffected (only message counts may
//!   inflate); experiment E17 measures this.
//!
//! # Example
//!
//! ```
//! use dwrs_core::swor::SworConfig;
//! use dwrs_core::Item;
//! use dwrs_sim::{assign_sites, build_swor, Partition};
//!
//! let mut runner = build_swor(SworConfig::new(8, 4), 42);
//! let sites = assign_sites(Partition::Random, 4, 10_000, 7);
//! runner.run(
//!     sites
//!         .into_iter()
//!         .enumerate()
//!         .map(|(t, site)| (site, Item::new(t as u64, 1.0))),
//! );
//! assert_eq!(runner.coordinator.sample().len(), 8);
//! // The metrics mirror the paper's accounting (broadcasts cost k):
//! assert_eq!(
//!     runner.metrics.down_total,
//!     runner.metrics.broadcast_events * 4
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adapters;
pub mod metrics;
pub mod partition;
pub mod protocol;
pub mod runner;
pub mod tree;

pub use adapters::{
    build_naive, build_swor, build_swor_faithful, build_swr, build_tag, swor_coordinator,
    swor_site, tree_group_seed, NoDown,
};
pub use metrics::Metrics;
pub use partition::{assign_sites, Partition, Partitioner};
pub use protocol::{CoordinatorNode, Meter, Outbox, SiteNode};
pub use runner::Runner;
pub use tree::FanInTree;
