//! Property-based tests for the simulator: delivery semantics, ordering and
//! message accounting under arbitrary schedules.

use dwrs_core::Item;
use dwrs_sim::{CoordinatorNode, Meter, Outbox, Runner, SiteNode};
use proptest::prelude::*;

/// Probe protocol: sites forward every item tagged with a sequence number;
/// the coordinator replies with a broadcast carrying the count every
/// `burst`-th receipt and a unicast back to the sender otherwise.
#[derive(Clone, Copy, Debug)]
struct Up {
    #[allow(dead_code)]
    seq: u64,
}
#[derive(Clone, Copy, Debug)]
enum Down {
    Uni(u64),
    Bcast(u64),
}
impl Meter for Up {
    fn kind(&self) -> &'static str {
        "up"
    }
}
impl Meter for Down {
    fn kind(&self) -> &'static str {
        match self {
            Down::Uni(_) => "uni",
            Down::Bcast(_) => "bcast",
        }
    }
}

struct PSite {
    sent: u64,
    /// Received downstream payloads, in arrival order.
    log: Vec<u64>,
}
impl SiteNode for PSite {
    type Up = Up;
    type Down = Down;
    fn observe(&mut self, _item: Item, out: &mut Vec<Up>) {
        self.sent += 1;
        out.push(Up { seq: self.sent });
    }
    fn receive(&mut self, msg: &Down) {
        match msg {
            Down::Uni(x) | Down::Bcast(x) => self.log.push(*x),
        }
    }
}

struct PCoord {
    burst: u64,
    received: u64,
}
impl CoordinatorNode for PCoord {
    type Up = Up;
    type Down = Down;
    fn receive(&mut self, from: usize, _msg: Up, out: &mut Outbox<Down>) {
        self.received += 1;
        if self.received.is_multiple_of(self.burst) {
            out.broadcast(Down::Bcast(self.received));
        } else {
            out.unicast(from, Down::Uni(self.received));
        }
    }
}

fn build(k: usize, burst: u64) -> (PCoord, Vec<PSite>) {
    (
        PCoord { burst, received: 0 },
        (0..k)
            .map(|_| PSite {
                sent: 0,
                log: Vec::new(),
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accounting_is_exact(
        schedule in proptest::collection::vec(0usize..5, 1..400),
        k in 1usize..5,
        burst in 1u64..6
    ) {
        let (coord, sites) = build(k, burst);
        let mut runner = Runner::new(coord, sites);
        for (t, &site) in schedule.iter().enumerate() {
            runner.step(site % k, Item::unit(t as u64));
        }
        let n = schedule.len() as u64;
        prop_assert_eq!(runner.metrics.up_total, n);
        let bcasts = n / burst;
        let unis = n - bcasts;
        prop_assert_eq!(runner.metrics.broadcast_events, bcasts);
        prop_assert_eq!(runner.metrics.down_total, bcasts * k as u64 + unis);
        prop_assert_eq!(runner.metrics.kind("bcast"), bcasts * k as u64);
        prop_assert_eq!(runner.metrics.kind("uni"), unis);
    }

    #[test]
    fn delayed_preserves_fifo_order_per_site(
        schedule in proptest::collection::vec(0usize..4, 1..300),
        latency in 0u64..50,
        burst in 1u64..4
    ) {
        let k = 4;
        let (coord, sites) = build(k, burst);
        let mut runner = Runner::new(coord, sites).with_latency(latency);
        for (t, &site) in schedule.iter().enumerate() {
            runner.step(site % k, Item::unit(t as u64));
        }
        runner.flush_delayed();
        // Each site's received payloads must be strictly increasing (FIFO,
        // payload = coordinator receipt counter which is itself increasing).
        for (i, site) in runner.sites.iter().enumerate() {
            for w in site.log.windows(2) {
                prop_assert!(w[0] < w[1], "site {} log out of order: {:?}", i, site.log);
            }
        }
    }

    #[test]
    fn delayed_and_instant_deliver_same_multiset(
        schedule in proptest::collection::vec(0usize..3, 1..200),
        latency in 1u64..30
    ) {
        let k = 3;
        let run = |lat: Option<u64>| {
            let (coord, sites) = build(k, 2);
            let mut runner = match lat {
                None => Runner::new(coord, sites),
                Some(l) => Runner::new(coord, sites).with_latency(l),
            };
            for (t, &site) in schedule.iter().enumerate() {
                runner.step(site % k, Item::unit(t as u64));
            }
            runner.flush_delayed();
            let mut all: Vec<(usize, u64)> = runner
                .sites
                .iter()
                .enumerate()
                .flat_map(|(i, s)| s.log.iter().map(move |&x| (i, x)))
                .collect();
            all.sort_unstable();
            (all, runner.metrics.total())
        };
        let (inst_log, inst_total) = run(None);
        let (del_log, del_total) = run(Some(latency));
        // This protocol's behaviour does not depend on downstream state, so
        // the delivered multiset and the message totals must match exactly.
        prop_assert_eq!(inst_log, del_log);
        prop_assert_eq!(inst_total, del_total);
    }

    #[test]
    fn probes_fire_expected_number_of_times(
        n in 1u64..200, every in 1u64..40
    ) {
        let k = 2;
        let (coord, sites) = build(k, 3);
        let mut runner = Runner::new(coord, sites);
        let mut probes = 0u64;
        runner.run_with_probes(
            (0..n).map(|i| ((i % 2) as usize, Item::unit(i))),
            every,
            |_, _, _| probes += 1,
        );
        let expect = n / every + u64::from(n % every != 0);
        prop_assert_eq!(probes, expect);
        prop_assert_eq!(runner.metrics.timeline.len() as u64, expect);
    }
}
