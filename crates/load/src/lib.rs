//! Load harness for the sampling daemon: rate-controlled traffic,
//! latency percentiles, and deterministic chaos.
//!
//! The paper's guarantee — a valid weighted sample-without-replacement at
//! *every* point in the stream — is only worth stating if it survives
//! hostile conditions: sites that burst, stall, crash mid-batch, and
//! reconnect while queries keep arriving. This crate turns that into a
//! harness:
//!
//! - **Writers** drive a live daemon at a configured items/s under a
//!   pluggable [`Schedule`] (steady, bursty, diurnal, adversarial
//!   hot-key), paced by absolute integer arithmetic
//!   ([`Pacer`]/[`SchedulePacer`]) so the achieved rate never drifts
//!   from the target.
//! - **Query workers** interleave live `Query`/`Metrics` frames and fold
//!   each response latency into a per-worker
//!   [`dwrs_stats::QuantileSketch`], merged at the end — percentiles
//!   without storing a single latency.
//! - **Chaos** executes a seeded, bit-reproducible [`FaultPlan`]:
//!   clean detach/reattach, connection drops without close, and feed
//!   pauses, with a controller thread snapshotting the stream
//!   mid-outage.
//! - **Invariants** are asserted after the run — mid-outage snapshots
//!   are contained in the final sample (`merge_samples` surfaces nothing
//!   new), watermarks only move forward across scrapes, and estimates
//!   stay inside their error envelopes. A violation fails the run, so
//!   the harness is a test, not just a meter.
//!
//! Entry point: build a [`LoadConfig`], call [`run_load`], inspect the
//! [`LoadReport`]. The `dwrs load` CLI command is a thin veneer over
//! exactly that.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod pacer;
pub mod plan;
pub mod report;
pub mod runner;
pub mod schedule;

pub use pacer::{Pacer, SchedulePacer};
pub use plan::{Fault, FaultAction, FaultPlan, FAULT_NAMES};
pub use report::{ChaosEvent, LatencySummary, LoadReport};
pub use runner::{run_load, ChaosConfig, LoadConfig};
pub use schedule::{Schedule, HOT_WEIGHT, SCHEDULE_NAMES};
