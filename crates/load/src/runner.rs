//! The load runner: writers, query workers, chaos controller, and the
//! post-run invariant verdict.
//!
//! One [`run_load`] call is a complete experiment: create (or join) a
//! daemon, attach N paced writers, interleave M query workers, execute
//! the seeded fault plan, then drain and *assert* — mid-outage snapshots
//! must be contained in the final sample, watermarks must never move
//! backwards, estimates must sit inside their envelopes. The returned
//! [`LoadReport`] carries the measurements and the violation list; an
//! empty list is the pass verdict CI gates on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use dwrs_apps::L1Site;
use dwrs_core::ctrl::{CtrlResp, LiveQueryKind, LiveSnapshot};
use dwrs_core::framed::FrameCodec;
use dwrs_core::merge::merge_two;
use dwrs_core::swor::SworConfig;
use dwrs_core::Item;
use dwrs_runtime::query::{l1_site_seed, Query};
use dwrs_runtime::{
    AttachClient, CtrlClient, Daemon, DaemonConfig, RetryPolicy, RuntimeConfig, RuntimeError,
};
use dwrs_sim::SiteNode;
use dwrs_stats::QuantileSketch;
use dwrs_telemetry::HISTOGRAM_EPS;

use crate::pacer::SchedulePacer;
use crate::plan::{Fault, FaultAction, FaultPlan};
use crate::report::{ChaosEvent, LatencySummary, LoadReport};
use crate::schedule::{Schedule, HOT_WEIGHT};

/// Items a writer generates per feed call: large enough to amortize the
/// per-call bookkeeping, small enough that fault triggers and pacing
/// stay responsive at any rate.
pub const FEED_CHUNK: u64 = 1024;

/// Milliseconds between the runner's own telemetry scrapes while writers
/// feed.
pub const SCRAPE_EVERY_MS: u64 = 25;

/// Chaos settings for a load run.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Faults to plan (round-robin across writers; actions cycle
    /// kill-clean → kill-drop → pause). See [`FaultPlan::generate`].
    pub faults: usize,
}

/// Everything [`run_load`] needs to know.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Daemon control address to drive, or `None` to spin up an
    /// in-process daemon on a loopback port for the run's duration.
    pub connect: Option<String>,
    /// Stream name to create and drive. Must not already exist with
    /// finished slots (slots are single-use after Eof).
    pub stream: String,
    /// Writer workers — one per site slot, so this is also `k`.
    pub writers: usize,
    /// Base sample size `s` (the query may derive a larger effective
    /// size).
    pub s: usize,
    /// Application query spec for the stream (`swor`, `l1:0.2,0.25`,
    /// `rhh:0.1`, …).
    pub query: String,
    /// Target mean rate in items/s, summed across all writers.
    pub rate: u64,
    /// Total items to feed, split evenly across writers.
    pub n: u64,
    /// Rate shape over time.
    pub schedule: Schedule,
    /// Concurrent query workers issuing live queries and scrapes (0 =
    /// none).
    pub query_workers: usize,
    /// Fault plan settings; `None` = chaos off.
    pub chaos: Option<ChaosConfig>,
    /// Seed for the fault plan, hot-key assignment, and site RNGs.
    pub seed: u64,
    /// Runtime knobs for the attach clients (batching).
    pub runtime: RuntimeConfig,
    /// Reattach backoff policy used by writers (initial attach and
    /// failover).
    pub retry: RetryPolicy,
}

impl LoadConfig {
    /// A small, fast default run against an in-process daemon: 4 writers
    /// at 50k items/s steady for 100k items, 2 query workers, chaos off.
    pub fn new(stream: &str) -> LoadConfig {
        LoadConfig {
            connect: None,
            stream: stream.to_string(),
            writers: 4,
            s: 64,
            query: "swor".into(),
            rate: 50_000,
            n: 100_000,
            schedule: Schedule::Steady,
            query_workers: 2,
            chaos: None,
            seed: 1,
            runtime: RuntimeConfig::default(),
            retry: RetryPolicy::default(),
        }
    }

    fn validate(&self) -> Result<(), RuntimeError> {
        let fail = |m: String| Err(RuntimeError::InvalidScenario(m));
        if self.writers == 0 {
            return fail("load needs at least one writer".into());
        }
        if self.rate == 0 {
            return fail("load rate must be positive".into());
        }
        if self.n < self.writers as u64 {
            return fail(format!(
                "load n = {} is smaller than the writer count {}",
                self.n, self.writers
            ));
        }
        if self.s == 0 {
            return fail("sample size s must be positive".into());
        }
        if self.stream.is_empty() {
            return fail("stream name must be non-empty".into());
        }
        self.schedule
            .validate()
            .map_err(RuntimeError::InvalidScenario)?;
        if let Some(chaos) = self.chaos {
            if chaos.faults == 0 {
                return fail("chaos needs at least one fault".into());
            }
        }
        Ok(())
    }
}

/// A writer telling the chaos controller it is executing a fault: the
/// controller dwells, snapshots the stream mid-outage, then acks with
/// the snapshot's items watermark.
struct FaultHit {
    dwell_ms: u64,
    reply: mpsc::Sender<u64>,
}

/// What one writer hands back.
struct WriterOutcome {
    fed: u64,
    events: Vec<ChaosEvent>,
}

/// What one query worker hands back.
struct QueryOutcome {
    queries: u64,
    scrapes: u64,
    errors: u64,
    sketch: QuantileSketch,
    violations: Vec<String>,
}

/// Runs the whole experiment and returns the report. Errors are reserved
/// for setup failures (bad config, daemon unreachable, stream refused);
/// anything that goes wrong *during* the run — writer failures, query
/// errors, invariant violations — lands in the report's `violations` so
/// the run always produces a row.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, RuntimeError> {
    cfg.validate()?;
    let query = Query::parse(&cfg.query).map_err(RuntimeError::InvalidScenario)?;
    let s_eff = query.sample_size(cfg.s);

    // Daemon: join the given one or run our own for the experiment.
    let own = match &cfg.connect {
        Some(_) => None,
        None => Some(
            Daemon::bind("127.0.0.1:0", DaemonConfig::default())
                .map_err(|e| RuntimeError::Transport(e.to_string()))?,
        ),
    };
    let addr = match (&cfg.connect, &own) {
        (Some(a), _) => a.clone(),
        (None, Some(d)) => d.local_addr().to_string(),
        _ => unreachable!(),
    };

    let mut ctrl =
        CtrlClient::connect(addr.as_str()).map_err(|e| RuntimeError::Transport(e.to_string()))?;
    if let CtrlResp::Err { msg } = ctrl
        .create(&cfg.stream, cfg.writers as u32, cfg.s as u32, &cfg.query)
        .map_err(|e| RuntimeError::Transport(e.to_string()))?
    {
        return Err(RuntimeError::Transport(format!("create refused: {msg}")));
    }

    let per_site = cfg.n / cfg.writers as u64;
    let plan = cfg
        .chaos
        .map(|c| FaultPlan::generate(cfg.seed, cfg.writers, per_site, c.faults));

    // Chaos controller: serializes mid-outage snapshots over its own
    // control connection and acks each fault after its dwell.
    let (fault_tx, controller) = match &plan {
        None => (None, None),
        Some(_) => {
            let (tx, rx) = mpsc::channel::<FaultHit>();
            let caddr = addr.clone();
            let cstream = cfg.stream.clone();
            let handle = thread::spawn(move || chaos_controller(&caddr, &cstream, rx));
            (Some(tx), Some(handle))
        }
    };

    // Query workers.
    let stop = Arc::new(AtomicBool::new(false));
    let query_handles: Vec<_> = (0..cfg.query_workers)
        .map(|w| {
            let qaddr = addr.clone();
            let qstream = cfg.stream.clone();
            let qstop = Arc::clone(&stop);
            thread::spawn(move || query_worker(&qaddr, &qstream, w, &qstop))
        })
        .collect();

    // Writers: monomorphized per site-node type, exactly as `dwrs attach`
    // chooses nodes.
    let t0 = Instant::now();
    let writer_handles: Vec<_> = (0..cfg.writers)
        .map(|site| {
            let w = WriterSetup {
                addr: addr.clone(),
                stream: cfg.stream.clone(),
                site,
                k: cfg.writers,
                per_site: per_site
                    + if site == 0 {
                        cfg.n % cfg.writers as u64
                    } else {
                        0
                    },
                pacer: SchedulePacer::new(
                    per_writer_rate(cfg.rate, cfg.writers, site),
                    cfg.schedule.clone(),
                ),
                hot_pct: cfg.schedule.hot_pct(),
                seed: cfg.seed,
                faults: plan.as_ref().map(|p| p.for_site(site)).unwrap_or_default(),
                fault_tx: fault_tx.clone(),
                rcfg: cfg.runtime,
                retry: RetryPolicy {
                    jitter_seed: cfg.seed ^ site as u64,
                    ..cfg.retry
                },
            };
            match query {
                Query::L1 { .. } => {
                    let ell = query.duplication().expect("l1 has a duplication factor");
                    let seed = cfg.seed;
                    thread::spawn(move || {
                        let mk = |inc: u64| {
                            L1Site::new(
                                &SworConfig::new(s_eff, w.k),
                                ell,
                                l1_site_seed(derive_seed(seed, inc), w.site),
                            )
                        };
                        writer_loop(&w, mk)
                    })
                }
                _ => {
                    let seed = cfg.seed;
                    thread::spawn(move || {
                        let mk = |inc: u64| {
                            dwrs_sim::swor_site(
                                &SworConfig::new(s_eff, w.k),
                                derive_seed(seed, inc),
                                w.site,
                            )
                        };
                        writer_loop(&w, mk)
                    })
                }
            }
        })
        .collect();
    drop(fault_tx);

    // The runner's own scrape loop doubles as the watermark monitor: the
    // per-stream items counter and the report clock must never move
    // backwards across consecutive scrapes.
    let mut violations: Vec<String> = Vec::new();
    let mut scrapes = 0u64;
    let mut last_clock = 0u64;
    let mut last_items = 0u64;
    while !writer_handles.iter().all(|h| h.is_finished()) {
        thread::sleep(Duration::from_millis(SCRAPE_EVERY_MS));
        match ctrl.metrics(0) {
            Err(e) => violations.push(format!("runner scrape failed: {e}")),
            Ok(report) => {
                scrapes += 1;
                if report.now_nanos < last_clock {
                    violations.push(format!(
                        "scrape clock moved backwards: {} after {}",
                        report.now_nanos, last_clock
                    ));
                }
                last_clock = report.now_nanos;
                if let Some(sm) = report.streams.iter().find(|s| s.stream == cfg.stream) {
                    if sm.items < last_items {
                        violations.push(format!(
                            "stream watermark moved backwards: {} after {}",
                            sm.items, last_items
                        ));
                    }
                    last_items = sm.items;
                }
            }
        }
    }
    let elapsed = t0.elapsed();

    let mut fed = 0u64;
    let mut events: Vec<ChaosEvent> = Vec::new();
    for (site, handle) in writer_handles.into_iter().enumerate() {
        match handle.join() {
            Err(_) => violations.push(format!("writer {site} panicked")),
            Ok(Err(e)) => violations.push(format!("writer {site} failed: {e}")),
            Ok(Ok(outcome)) => {
                fed += outcome.fed;
                events.extend(outcome.events);
            }
        }
    }
    events.sort_by_key(|e| (e.site, e.at_items));
    // ordering: Relaxed — pure quiescence signal: the query workers only
    // ever exit their loop on it, and their results are collected through
    // `join`, which provides the real happens-before edge.
    stop.store(true, Ordering::Relaxed);
    let mut queries = 0u64;
    let mut query_errors = 0u64;
    let mut sketches: Vec<QuantileSketch> = Vec::new();
    for handle in query_handles {
        match handle.join() {
            Err(_) => violations.push("query worker panicked".into()),
            Ok(outcome) => {
                queries += outcome.queries;
                scrapes += outcome.scrapes;
                query_errors += outcome.errors;
                violations.extend(outcome.violations);
                sketches.push(outcome.sketch);
            }
        }
    }
    let mid_snapshots = match controller {
        None => Vec::new(),
        Some(handle) => match handle.join() {
            Err(_) => {
                violations.push("chaos controller panicked".into());
                Vec::new()
            }
            Ok((snaps, errors)) => {
                query_errors += errors;
                snaps
            }
        },
    };

    // Final answers, then drain (drain removes the stream).
    let fin = ctrl.snapshot(&cfg.stream, LiveQueryKind::CurrentSample, 0)?;
    let l1 = ctrl.snapshot(&cfg.stream, LiveQueryKind::L1Now, 0)?;
    let rhh = ctrl.snapshot(&cfg.stream, LiveQueryKind::RhhSoFar, 0)?;
    let drained = ctrl.drain_stream(&cfg.stream)?;
    check_invariants(CheckInputs {
        cfg,
        s_eff,
        fed,
        events: &events,
        mid_snapshots: &mid_snapshots,
        fin: &fin,
        l1: &l1,
        rhh: &rhh,
        drained: &drained,
        violations: &mut violations,
    });
    if let Some(d) = own {
        d.shutdown();
    }

    let delivered = drained.items;
    let elapsed_s = elapsed.as_secs_f64();
    let achieved_rate = if elapsed_s > 0.0 {
        fed as f64 / elapsed_s
    } else {
        0.0
    };
    let rate_error_pct = (achieved_rate - cfg.rate as f64) / cfg.rate as f64 * 100.0;
    // The rate accuracy bar applies when nothing intentionally distorts
    // wall time: chaos dwells pause feeding, and shaped schedules only
    // integrate to the mean over *full* periods.
    let flat_rate = matches!(cfg.schedule, Schedule::Steady | Schedule::HotKey { .. });
    if cfg.chaos.is_none() && flat_rate && rate_error_pct.abs() > 5.0 {
        violations.push(format!(
            "achieved rate {achieved_rate:.0} items/s is {rate_error_pct:+.2}% from the \
             {} items/s target (tolerance ±5%)",
            cfg.rate
        ));
    }

    let latency = summarize_latency(&sketches);
    Ok(LoadReport {
        schedule: schedule_spec(&cfg.schedule),
        rate: cfg.rate,
        chaos: cfg.chaos.is_some(),
        seed: cfg.seed,
        writers: cfg.writers,
        query_workers: cfg.query_workers,
        n: cfg.n,
        fed,
        delivered,
        elapsed_s,
        achieved_rate,
        rate_error_pct,
        queries,
        scrapes,
        query_errors,
        latency,
        events,
        violations,
    })
}

/// The writer's share of the total rate; the remainder goes to the first
/// sites so the shares sum exactly to the target.
fn per_writer_rate(rate: u64, writers: usize, site: usize) -> u64 {
    let base = rate / writers as u64;
    let extra = u64::from((site as u64) < rate % writers as u64);
    (base + extra).max(1)
}

/// Derives the site-RNG seed for a writer incarnation: incarnation 0 is
/// the base seed, each kill-drop restart gets a fresh independent one
/// (the crashed incarnation's generator position is lost by design).
fn derive_seed(seed: u64, incarnation: u64) -> u64 {
    seed.wrapping_add(incarnation.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Renders a schedule back into its canonical `--schedule` spec.
fn schedule_spec(s: &Schedule) -> String {
    match *s {
        Schedule::Steady => "steady".into(),
        Schedule::Bursty {
            period_ms,
            duty_pct,
            burst,
        } => format!("bursty:{period_ms},{duty_pct},{burst}"),
        Schedule::Diurnal { period_ms, amp } => format!("diurnal:{period_ms},{amp}"),
        Schedule::HotKey { hot_pct } => format!("hotkey:{hot_pct}"),
    }
}

struct WriterSetup {
    addr: String,
    stream: String,
    site: usize,
    k: usize,
    per_site: u64,
    pacer: SchedulePacer,
    hot_pct: Option<u32>,
    seed: u64,
    faults: Vec<Fault>,
    fault_tx: Option<mpsc::Sender<FaultHit>>,
    rcfg: RuntimeConfig,
    retry: RetryPolicy,
}

/// One writer: attach, feed at the paced rate, execute this site's
/// faults at their fed-watermark triggers, finish with Eof.
fn writer_loop<S, F>(w: &WriterSetup, make_site: F) -> Result<WriterOutcome, RuntimeError>
where
    S: SiteNode + Send + 'static,
    S::Up: FrameCodec + Send + 'static,
    S::Down: FrameCodec + Send + 'static,
    F: Fn(u64) -> S,
{
    let mut incarnation = 0u64;
    let (client, _) = AttachClient::attach_with_retry(
        w.addr.as_str(),
        &w.stream,
        w.site,
        make_site(incarnation),
        &w.rcfg,
        &w.retry,
    )?;
    let mut link = Some(client);
    let mut events = Vec::new();
    let mut fed = 0u64;
    let mut fault_ix = 0;
    let mut buf: Vec<Item> = Vec::with_capacity(FEED_CHUNK as usize);
    let started = Instant::now();
    while fed < w.per_site {
        if fault_ix < w.faults.len() && fed >= w.faults[fault_ix].at_items {
            let fault = w.faults[fault_ix];
            fault_ix += 1;
            let site_back = match fault.action {
                FaultAction::Pause => None,
                FaultAction::KillClean => {
                    let (site, _) = link.take().expect("link live").detach()?;
                    Some(site)
                }
                FaultAction::KillDrop => {
                    // No close handshake: the socket dies abruptly and
                    // whatever was batched but unflushed dies with it.
                    drop(link.take().expect("link live").abort());
                    incarnation += 1;
                    None
                }
            };
            // Hand the outage to the controller; it dwells, snapshots the
            // stream while this site is down, and acks with the watermark.
            let snapshot_items = match &w.fault_tx {
                None => 0,
                Some(tx) => {
                    let (reply_tx, reply_rx) = mpsc::channel();
                    let hit = FaultHit {
                        dwell_ms: fault.dwell_ms,
                        reply: reply_tx,
                    };
                    if tx.send(hit).is_ok() {
                        reply_rx.recv().unwrap_or(0)
                    } else {
                        0
                    }
                }
            };
            let mut retries = 0;
            if link.is_none() {
                let site = site_back.unwrap_or_else(|| make_site(incarnation));
                let (client, r) = AttachClient::attach_with_retry(
                    w.addr.as_str(),
                    &w.stream,
                    w.site,
                    site,
                    &w.rcfg,
                    &w.retry,
                )?;
                retries = r;
                link = Some(client);
            }
            events.push(ChaosEvent {
                site: w.site,
                action: fault.action,
                at_items: fault.at_items,
                dwell_ms: fault.dwell_ms,
                snapshot_items,
                retries,
            });
            continue;
        }
        let due = w.pacer.due_by(started.elapsed()).min(w.per_site);
        if due <= fed {
            let hint = w
                .pacer
                .sleep_hint(fed, started.elapsed())
                .clamp(Duration::from_micros(50), Duration::from_millis(5));
            thread::sleep(hint);
            continue;
        }
        let stop_at = if fault_ix < w.faults.len() {
            w.faults[fault_ix].at_items.min(w.per_site)
        } else {
            w.per_site
        };
        let take = (due - fed).min(stop_at.saturating_sub(fed)).min(FEED_CHUNK);
        if take == 0 {
            // Parked exactly on a fault trigger; handled at the loop top.
            continue;
        }
        buf.clear();
        for t in fed..fed + take {
            buf.push(make_item(w, t));
        }
        link.as_mut().expect("link live").feed(buf.drain(..))?;
        fed += take;
    }
    link.take().expect("link live").finish()?;
    Ok(WriterOutcome { fed, events })
}

/// The deterministic item for per-writer index `t`: globally unique id
/// `t·k + site` (writers interleave the id space), unit weight — unless
/// the hot-key schedule marks it heavy via a seeded hash.
fn make_item(w: &WriterSetup, t: u64) -> Item {
    let id = t * w.k as u64 + w.site as u64;
    let weight = match w.hot_pct {
        Some(pct) if splitmix(w.seed ^ id) % 100 < u64::from(pct) => HOT_WEIGHT,
        _ => 1.0,
    };
    Item::new(id, weight)
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The chaos controller body: for every fault a writer reports, dwell,
/// snapshot the stream mid-outage (the snapshot that must later be
/// contained in the final sample), and ack the writer so it reattaches.
/// Ends when every writer has dropped its sender. Returns the collected
/// snapshots and the snapshot attempts that failed.
fn chaos_controller(
    addr: &str,
    stream: &str,
    rx: mpsc::Receiver<FaultHit>,
) -> (Vec<LiveSnapshot>, u64) {
    let mut ctrl = CtrlClient::connect(addr).ok();
    let mut snaps = Vec::new();
    let mut errors = 0u64;
    while let Ok(hit) = rx.recv() {
        thread::sleep(Duration::from_millis(hit.dwell_ms));
        let items = match ctrl
            .as_mut()
            .map(|c| c.snapshot(stream, LiveQueryKind::CurrentSample, 0))
        {
            Some(Ok(snap)) => {
                let items = snap.items;
                snaps.push(snap);
                items
            }
            _ => {
                errors += 1;
                0
            }
        };
        let _ = hit.reply.send(items);
    }
    (snaps, errors)
}

/// One query worker: rotates live query kinds over its own control
/// connection, folds each response latency into its private sketch, and
/// checks that the items watermark it observes never moves backwards.
fn query_worker(addr: &str, stream: &str, worker: usize, stop: &AtomicBool) -> QueryOutcome {
    let mut outcome = QueryOutcome {
        queries: 0,
        scrapes: 0,
        errors: 0,
        sketch: QuantileSketch::new(HISTOGRAM_EPS),
        violations: Vec::new(),
    };
    let mut ctrl = match CtrlClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            outcome
                .violations
                .push(format!("query worker {worker} could not connect: {e}"));
            return outcome;
        }
    };
    let kinds = [
        LiveQueryKind::CurrentSample,
        LiveQueryKind::Stats,
        LiveQueryKind::L1Now,
        LiveQueryKind::RhhSoFar,
    ];
    let mut last_items = 0u64;
    let mut round = worker;
    // ordering: Relaxed — quiescence poll; seeing the stop flag one
    // iteration late only runs one more harmless query, and the worker's
    // outcome is handed back via `join`, not through this flag.
    while !stop.load(Ordering::Relaxed) {
        let t0 = Instant::now();
        // Every 8th request is a telemetry scrape instead of a query, so
        // both control paths stay under measurement.
        let items = if round % 8 == 7 {
            match ctrl.metrics(0) {
                Err(_) => None,
                Ok(report) => {
                    outcome.scrapes += 1;
                    report
                        .streams
                        .iter()
                        .find(|s| s.stream == stream)
                        .map(|s| s.items)
                }
            }
        } else {
            match ctrl.snapshot(stream, kinds[round % kinds.len()], 0) {
                Err(_) => None,
                Ok(snap) => {
                    outcome.queries += 1;
                    Some(snap.items)
                }
            }
        };
        match items {
            None => outcome.errors += 1,
            Some(items) => {
                outcome.sketch.observe(t0.elapsed().as_micros() as f64);
                if items < last_items {
                    outcome.violations.push(format!(
                        "query worker {worker} saw the watermark move backwards: \
                         {items} after {last_items}"
                    ));
                }
                last_items = items;
            }
        }
        round += 1;
        thread::sleep(Duration::from_micros(300));
    }
    outcome
}

/// Pools the per-worker sketches and extracts the percentile summary.
fn summarize_latency(sketches: &[QuantileSketch]) -> Option<LatencySummary> {
    if sketches.is_empty() {
        return None;
    }
    let mut pooled = QuantileSketch::merge_all(HISTOGRAM_EPS, sketches);
    if pooled.is_empty() {
        return None;
    }
    Some(LatencySummary {
        count: pooled.count(),
        p50_us: pooled.query(0.50).unwrap_or(0.0),
        p90_us: pooled.query(0.90).unwrap_or(0.0),
        p99_us: pooled.query(0.99).unwrap_or(0.0),
        max_us: pooled.max().unwrap_or(0.0),
    })
}

struct CheckInputs<'a> {
    cfg: &'a LoadConfig,
    s_eff: usize,
    fed: u64,
    events: &'a [ChaosEvent],
    mid_snapshots: &'a [LiveSnapshot],
    fin: &'a LiveSnapshot,
    l1: &'a LiveSnapshot,
    rhh: &'a LiveSnapshot,
    drained: &'a LiveSnapshot,
    violations: &'a mut Vec<String>,
}

/// The post-run invariant battery. Every check here is a consequence of
/// the paper's validity guarantee or the daemon's delivery contract — a
/// failure means the system, not the workload, misbehaved.
fn check_invariants(inp: CheckInputs<'_>) {
    let v = inp.violations;
    let fin = inp.fin;

    // Watermark accounting: the daemon can never deliver more than was
    // fed; with no kill-drop faults (nothing crashed mid-batch) it must
    // deliver exactly what was fed; and the drain snapshot agrees with
    // the final query.
    if fin.items > inp.fed {
        v.push(format!(
            "delivered watermark {} exceeds fed items {}",
            fin.items, inp.fed
        ));
    }
    let dropped = inp.events.iter().any(|e| e.action == FaultAction::KillDrop);
    if !dropped && fin.items != inp.fed {
        v.push(format!(
            "no connection was dropped, yet delivered {} != fed {}",
            fin.items, inp.fed
        ));
    }
    if inp.drained.items != fin.items {
        v.push(format!(
            "drain watermark {} disagrees with the final query's {}",
            inp.drained.items, fin.items
        ));
    }

    // Sample validity: the sample holds exactly min(s_eff, candidates)
    // entries, every key clears the threshold, and — the failover
    // invariant — merging any mid-outage snapshot into the final sample
    // surfaces nothing new: every mid entry either survived into the
    // final sample or was displaced by a key at most the final threshold.
    if fin.sample.len() > inp.s_eff {
        v.push(format!(
            "final sample holds {} entries, more than s_eff {}",
            fin.sample.len(),
            inp.s_eff
        ));
    }
    let unit_query = inp.cfg.query == "swor";
    if unit_query && fin.items >= inp.s_eff as u64 && fin.sample.len() != inp.s_eff {
        v.push(format!(
            "final sample holds {} entries, expected a full s_eff = {}",
            fin.sample.len(),
            inp.s_eff
        ));
    }
    for entry in &fin.sample {
        if fin.u > 0.0 && entry.key < fin.u {
            v.push(format!(
                "sample entry id {} key {:.6e} is below the threshold u {:.6e}",
                entry.item.id, entry.key, fin.u
            ));
            break;
        }
    }
    let fin_ids: std::collections::HashSet<u64> = fin.sample.iter().map(|e| e.item.id).collect();
    for (ix, mid) in inp.mid_snapshots.iter().enumerate() {
        if mid.items > fin.items {
            v.push(format!(
                "mid-outage snapshot {ix} watermark {} exceeds the final {}",
                mid.items, fin.items
            ));
        }
        let merged = merge_two(&mid.sample, &fin.sample, inp.s_eff);
        for entry in &merged {
            if !fin_ids.contains(&entry.item.id) {
                v.push(format!(
                    "containment broken: merging mid-outage snapshot {ix} surfaced id {} \
                     absent from the final sample",
                    entry.item.id
                ));
                break;
            }
        }
        for entry in &mid.sample {
            if !fin_ids.contains(&entry.item.id) && entry.key > fin.u {
                v.push(format!(
                    "containment broken: mid-outage id {} (key {:.6e}) vanished without a \
                     displacing key above u {:.6e}",
                    entry.item.id, entry.key, fin.u
                ));
                break;
            }
        }
    }

    // Estimate envelopes. The L1 estimate W̃ = s·u/ℓ concentrates within
    // O(1/√s) of the true weight; for unit weights the true weight IS the
    // watermark, so a loose 50% envelope (far outside the paper's bound
    // for s ≥ 64) still catches a broken threshold path. Hot-key runs
    // skip it: their true weight depends on which items were dropped.
    let unit_weights = inp.cfg.schedule.hot_pct().is_none();
    if unit_query && unit_weights && fin.items >= 4 * inp.s_eff as u64 && inp.l1.estimate > 0.0 {
        let rel = (inp.l1.estimate - fin.items as f64).abs() / fin.items as f64;
        if rel > 0.5 {
            v.push(format!(
                "L1 estimate {:.1} is {rel:.2}× away from the true weight {}",
                inp.l1.estimate, fin.items
            ));
        }
    }
    // Residual heavy hitters come back heaviest-first by contract.
    let weights: Vec<f64> = inp.rhh.sample.iter().map(|e| e.item.weight).collect();
    if weights.windows(2).any(|p| p[0] < p[1]) {
        v.push("rhh candidates are not ordered heaviest-first".into());
    }
}
