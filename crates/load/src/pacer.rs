//! Rate pacing: converting elapsed wall time into an item quota.
//!
//! The pacer is *absolute*, not incremental: both directions are computed
//! from the run's start instant, so rounding never accumulates. At any
//! elapsed time the quota is `⌊elapsed · rate⌋` exactly (in integer
//! nanosecond arithmetic for the steady path), and the inverse —
//! "when is item `n` due?" — is `⌈n / rate⌉` in nanoseconds. Feeding
//! `quota − fed` items and sleeping until the next deadline holds any rate
//! from 1 item/s to 1e9 items/s without drift or overflow.

use std::time::Duration;

use crate::schedule::Schedule;

const NANOS_PER_SEC: u128 = 1_000_000_000;

/// A constant-rate pacer over integer nanosecond arithmetic.
#[derive(Clone, Copy, Debug)]
pub struct Pacer {
    rate: u64,
}

impl Pacer {
    /// Creates a pacer targeting `rate` items per second.
    ///
    /// # Panics
    /// Panics if `rate` is zero.
    pub fn new(rate: u64) -> Pacer {
        assert!(rate > 0, "pacer rate must be positive");
        Pacer { rate }
    }

    /// The configured rate in items per second.
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// How many items should have been sent by `elapsed`:
    /// `⌊elapsed · rate⌋`. Saturates instead of overflowing at
    /// astronomical `elapsed × rate` combinations.
    pub fn due_by(&self, elapsed: Duration) -> u64 {
        let due = elapsed
            .as_nanos()
            .checked_mul(u128::from(self.rate))
            .map(|n| n / NANOS_PER_SEC)
            .unwrap_or(u128::MAX);
        u64::try_from(due).unwrap_or(u64::MAX)
    }

    /// The earliest elapsed time at which item index `n` (0-based) is due:
    /// the inverse of [`Pacer::due_by`], so `due_by(deadline(n)) > n`
    /// always holds and a sender that sleeps until `deadline(fed)` never
    /// stalls.
    pub fn deadline(&self, n: u64) -> Duration {
        // Item n is due once ⌊t·rate⌋ ≥ n+1, i.e. t ≥ (n+1)/rate seconds.
        let nanos = (u128::from(n) + 1)
            .saturating_mul(NANOS_PER_SEC)
            .div_ceil(u128::from(self.rate));
        duration_from_nanos_u128(nanos)
    }
}

/// A pacer whose instantaneous rate follows a [`Schedule`] shape.
///
/// Steady and hot-key schedules take the exact integer path of [`Pacer`];
/// shaped schedules convert elapsed wall time to "virtual time" through
/// the schedule's closed-form [`Schedule::cumulative`] integral, so the
/// quota is still computed absolutely from the start instant and full
/// periods land on exactly `rate × period` items.
#[derive(Clone, Debug)]
pub struct SchedulePacer {
    pacer: Pacer,
    schedule: Schedule,
}

impl SchedulePacer {
    /// Creates a shaped pacer with mean `rate` items per second.
    ///
    /// # Panics
    /// Panics if `rate` is zero.
    pub fn new(rate: u64, schedule: Schedule) -> SchedulePacer {
        SchedulePacer {
            pacer: Pacer::new(rate),
            schedule,
        }
    }

    /// The mean rate in items per second.
    pub fn rate(&self) -> u64 {
        self.pacer.rate()
    }

    /// The schedule shaping this pacer.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// How many items should have been sent by `elapsed` under the shaped
    /// rate.
    pub fn due_by(&self, elapsed: Duration) -> u64 {
        match self.schedule {
            Schedule::Steady | Schedule::HotKey { .. } => self.pacer.due_by(elapsed),
            _ => {
                let virtual_s = self.schedule.cumulative(elapsed.as_secs_f64());
                let due = virtual_s * self.pacer.rate() as f64;
                if !due.is_finite() || due <= 0.0 {
                    0
                } else if due >= u64::MAX as f64 {
                    u64::MAX
                } else {
                    due as u64
                }
            }
        }
    }

    /// How long a sender that has fed `n` items should sleep before
    /// re-checking the quota. Exact for steady-rate schedules (the precise
    /// gap to item `n`'s deadline); for shaped schedules a short bounded
    /// nap, since the instantaneous rate varies — the sender re-checks
    /// [`SchedulePacer::due_by`] after waking, so a conservative hint only
    /// costs wake-ups, never correctness.
    pub fn sleep_hint(&self, n: u64, elapsed: Duration) -> Duration {
        match self.schedule {
            Schedule::Steady | Schedule::HotKey { .. } => {
                self.pacer.deadline(n).saturating_sub(elapsed)
            }
            _ => {
                // Shaped path: take one steady step as the hint, capped at
                // 2 ms so a trough never oversleeps into the next burst.
                let step = self.pacer.deadline(n).saturating_sub(elapsed);
                step.min(Duration::from_millis(2))
                    .max(Duration::from_micros(50))
            }
        }
    }
}

/// Builds a `Duration` from a u128 nanosecond count, saturating at the
/// maximum representable duration.
fn duration_from_nanos_u128(nanos: u128) -> Duration {
    let secs = nanos / NANOS_PER_SEC;
    let sub = (nanos % NANOS_PER_SEC) as u32;
    match u64::try_from(secs) {
        Ok(s) => Duration::new(s, sub),
        Err(_) => Duration::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quota_at_whole_seconds() {
        for rate in [1, 7, 1_000, 1_000_000_000] {
            let p = Pacer::new(rate);
            for secs in [1u64, 2, 10, 3600] {
                assert_eq!(p.due_by(Duration::from_secs(secs)), rate * secs);
            }
        }
    }

    #[test]
    fn quota_saturates_instead_of_overflowing() {
        let p = Pacer::new(1_000_000_000);
        assert_eq!(p.due_by(Duration::MAX), u64::MAX);
        assert_eq!(p.due_by(Duration::ZERO), 0);
    }

    #[test]
    fn deadline_is_the_inverse_of_due_by() {
        for rate in [1u64, 3, 1_000, 999_999_937, 1_000_000_000] {
            let p = Pacer::new(rate);
            for n in [0u64, 1, 2, 999, 1_000_000] {
                let d = p.deadline(n);
                assert!(p.due_by(d) > n, "rate {rate}, item {n}");
                if let Some(before) = d.checked_sub(Duration::from_nanos(1)) {
                    assert!(p.due_by(before) <= n, "rate {rate}, item {n}");
                }
            }
        }
    }

    #[test]
    fn deadline_saturates_at_extreme_indices() {
        let p = Pacer::new(1);
        // u64::MAX items at 1/s lands just inside Duration's range.
        let d = p.deadline(u64::MAX - 1);
        assert!(d <= Duration::MAX);
        assert!(d.as_secs() >= u64::MAX - 1);
    }

    #[test]
    fn shaped_quota_matches_steady_on_full_periods() {
        let sp = SchedulePacer::new(10_000, Schedule::parse("bursty:100,20,4").unwrap());
        // 10 full 100 ms periods = 1 s = exactly 10_000 items.
        assert_eq!(sp.due_by(Duration::from_secs(1)), 10_000);
        let dp = SchedulePacer::new(4_000, Schedule::parse("diurnal:200,0.9").unwrap());
        let due = dp.due_by(Duration::from_secs(2));
        assert!(
            (due as i64 - 8_000).unsigned_abs() <= 1,
            "diurnal full periods: {due}"
        );
    }

    #[test]
    fn shaped_quota_is_monotone() {
        for spec in ["bursty:50,30,3", "diurnal:80,0.8"] {
            let sp = SchedulePacer::new(50_000, Schedule::parse(spec).unwrap());
            let mut last = 0;
            for ms in 0..500 {
                let due = sp.due_by(Duration::from_millis(ms));
                assert!(due >= last, "{spec} at {ms} ms");
                last = due;
            }
        }
    }
}
