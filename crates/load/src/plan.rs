//! Seeded fault plans: deterministic chaos.
//!
//! A [`FaultPlan`] is a pure function of `(seed, sites, per_site_items,
//! faults)` — the same inputs always produce the bit-identical plan, so a
//! failing chaos run reproduces from nothing but its seed. Faults trigger
//! on a writer's *fed-item watermark* (not wall time), which keeps the
//! injection point deterministic even when scheduling jitter shifts the
//! wall clock.

/// Every fault action name, for docs and doc-sync tests.
pub const FAULT_NAMES: [&str; 3] = ["kill-clean", "kill-drop", "pause"];

/// What the chaos controller does to a writer at its trigger point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Detach at a frame boundary (resumable close), dwell, then
    /// reattach to the same site slot with retry-with-backoff.
    KillClean,
    /// Drop the TCP connection without a clean close — models a crashed
    /// site; any batched-but-unflushed items are lost, and the writer
    /// restarts with a fresh site incarnation.
    KillDrop,
    /// Pause the feed for the dwell without touching the connection —
    /// models a stalled site; the daemon sees silence, not a close.
    Pause,
}

impl FaultAction {
    /// The action's plan/report name (`kill-clean` | `kill-drop` |
    /// `pause`).
    pub fn name(&self) -> &'static str {
        match self {
            FaultAction::KillClean => FAULT_NAMES[0],
            FaultAction::KillDrop => FAULT_NAMES[1],
            FaultAction::Pause => FAULT_NAMES[2],
        }
    }
}

/// One planned fault: at `at_items` fed items, writer `site` performs
/// `action` and stays down (or silent) for `dwell_ms`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Writer (site index) the fault targets.
    pub site: usize,
    /// Fed-item watermark of that writer at which the fault fires.
    pub at_items: u64,
    /// What happens at the trigger point.
    pub action: FaultAction,
    /// Outage / silence duration in milliseconds.
    pub dwell_ms: u64,
}

/// A deterministic sequence of faults, ordered by `(site, at_items)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed the plan was generated from.
    pub seed: u64,
    /// The planned faults, sorted by `(site, at_items)`.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Generates the plan for `faults` faults across `sites` writers each
    /// feeding `per_site_items` items. Pure and deterministic: identical
    /// arguments yield a bit-identical plan.
    ///
    /// Sites are assigned round-robin (so any plan with ≥ 2 faults over
    /// ≥ 2 sites kills at least 2 distinct sites) and actions cycle
    /// kill-clean → kill-drop → pause. Trigger watermarks are drawn in
    /// the middle 10–80% of the per-site feed so every fault fires
    /// mid-stream, and same-site triggers are spread apart so a writer
    /// has fed real traffic between consecutive faults.
    pub fn generate(seed: u64, sites: usize, per_site_items: u64, faults: usize) -> FaultPlan {
        let mut rng = seed;
        let mut out = Vec::with_capacity(faults);
        let lo = per_site_items / 10;
        let span = (per_site_items * 7 / 10).max(1);
        for f in 0..faults {
            let site = f % sites.max(1);
            let action = match f % 3 {
                0 => FaultAction::KillClean,
                1 => FaultAction::KillDrop,
                _ => FaultAction::Pause,
            };
            let at_items = lo + splitmix64(&mut rng) % span;
            let dwell_ms = 5 + splitmix64(&mut rng) % 35;
            out.push(Fault {
                site,
                at_items,
                action,
                dwell_ms,
            });
        }
        out.sort_by_key(|f| (f.site, f.at_items));
        // Separate same-site triggers so consecutive faults never collide
        // on one watermark (a writer checks triggers between batches).
        let gap = (per_site_items / 50).max(1);
        for i in 1..out.len() {
            if out[i].site == out[i - 1].site && out[i].at_items < out[i - 1].at_items + gap {
                out[i].at_items = out[i - 1].at_items + gap;
            }
        }
        FaultPlan { seed, faults: out }
    }

    /// The faults targeting one writer, in trigger order.
    pub fn for_site(&self, site: usize) -> Vec<Fault> {
        self.faults
            .iter()
            .filter(|f| f.site == site)
            .copied()
            .collect()
    }

    /// How many distinct sites this plan kills (clean or drop) — the
    /// chaos acceptance bar requires at least 2.
    pub fn distinct_kill_sites(&self) -> usize {
        let mut sites: Vec<usize> = self
            .faults
            .iter()
            .filter(|f| f.action != FaultAction::Pause)
            .map(|f| f.site)
            .collect();
        sites.sort_unstable();
        sites.dedup();
        sites.len()
    }
}

/// SplitMix64 step — the same tiny deterministic generator the vendored
/// proptest and the driver's seed derivation use.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::generate(42, 4, 10_000, 6);
        let b = FaultPlan::generate(42, 4, 10_000, 6);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, 4, 10_000, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn triggers_fire_mid_stream() {
        let plan = FaultPlan::generate(7, 3, 9_000, 9);
        assert_eq!(plan.faults.len(), 9);
        for f in &plan.faults {
            assert!(f.at_items >= 900, "{f:?}");
            assert!(f.at_items < 9_000, "{f:?}");
            assert!(f.dwell_ms >= 5 && f.dwell_ms < 40, "{f:?}");
        }
    }

    #[test]
    fn kills_at_least_two_distinct_sites() {
        for seed in 0..20 {
            let plan = FaultPlan::generate(seed, 4, 5_000, 4);
            assert!(plan.distinct_kill_sites() >= 2, "seed {seed}");
        }
    }

    #[test]
    fn same_site_triggers_are_separated() {
        let plan = FaultPlan::generate(99, 2, 10_000, 8);
        for site in 0..2 {
            let faults = plan.for_site(site);
            for pair in faults.windows(2) {
                assert!(pair[1].at_items > pair[0].at_items, "{pair:?}");
            }
        }
    }

    #[test]
    fn action_names_cover_the_catalog() {
        let named: Vec<&str> = [
            FaultAction::KillClean,
            FaultAction::KillDrop,
            FaultAction::Pause,
        ]
        .iter()
        .map(|a| a.name())
        .collect();
        assert_eq!(named, FAULT_NAMES);
    }
}
