//! Traffic schedules: how the target rate is shaped over time.
//!
//! A [`Schedule`] is a deterministic rate *shape* with mean 1: the pacer
//! multiplies it by the configured items/s, so every schedule delivers the
//! same total item count over full periods — only the arrival pattern
//! differs. The shapes are closed-form integrable, which is what lets the
//! pacer compute "items due by `t`" exactly instead of accumulating
//! per-tick rounding drift (see [`crate::pacer::SchedulePacer`]).

use std::f64::consts::TAU;

/// Every schedule name the parser accepts, for docs and doc-sync tests.
pub const SCHEDULE_NAMES: [&str; 4] = ["steady", "bursty", "diurnal", "hotkey"];

/// A deterministic, mean-1 rate shape.
#[derive(Clone, Debug, PartialEq)]
pub enum Schedule {
    /// Constant rate: multiplier 1 at every instant.
    Steady,
    /// Square-wave bursts: multiplier `burst` for the first
    /// `duty_pct`% of every period, and a compensating low multiplier
    /// `(100 − duty_pct·burst)/(100 − duty_pct)` for the rest, so each
    /// full period integrates to exactly the configured mean.
    Bursty {
        /// Burst period in milliseconds.
        period_ms: u64,
        /// Percentage of the period spent bursting (`0 < duty_pct < 100`).
        duty_pct: u32,
        /// Rate multiplier during the burst (`1 ≤ burst ≤ 100/duty_pct`).
        burst: f64,
    },
    /// A compressed day: multiplier `1 + amp·sin(2πt/period)`, the
    /// smooth peak-and-trough profile of user-facing traffic. Integrates
    /// to the configured mean over every full period.
    Diurnal {
        /// Cycle period in milliseconds.
        period_ms: u64,
        /// Peak-to-mean amplitude (`0 ≤ amp < 1`; the trough rate is
        /// `1 − amp` of the mean, so it never goes negative).
        amp: f64,
    },
    /// Adversarial hot keys: the *rate* is steady, but `hot_pct`% of
    /// items carry [`HOT_WEIGHT`]× weight — the worst case for the
    /// sampler's level/epoch machinery and for residual-heavy-hitter
    /// queries, since a few keys dominate the total weight.
    HotKey {
        /// Percentage of items that are heavy (`0 < hot_pct ≤ 100`).
        hot_pct: u32,
    },
}

/// Weight of a hot item under [`Schedule::HotKey`] (cold items weigh 1).
pub const HOT_WEIGHT: f64 = 1_000.0;

impl Schedule {
    /// The schedule's parse name (`steady` | `bursty` | `diurnal` |
    /// `hotkey`).
    pub fn name(&self) -> &'static str {
        match self {
            Schedule::Steady => "steady",
            Schedule::Bursty { .. } => "bursty",
            Schedule::Diurnal { .. } => "diurnal",
            Schedule::HotKey { .. } => "hotkey",
        }
    }

    /// Parses a `name[:params]` spec (the CLI `--schedule` syntax):
    /// `steady`, `bursty[:period_ms[,duty_pct[,burst]]]`,
    /// `diurnal[:period_ms[,amp]]`, `hotkey[:hot_pct]`.
    ///
    /// ```
    /// use dwrs_load::Schedule;
    /// assert_eq!(Schedule::parse("steady").unwrap(), Schedule::Steady);
    /// let b = Schedule::parse("bursty:500,20,4").unwrap();
    /// assert_eq!(b.name(), "bursty");
    /// assert!(Schedule::parse("bursty:500,20,99").is_err()); // mean > 1
    /// ```
    pub fn parse(spec: &str) -> Result<Schedule, String> {
        let (name, params) = match spec.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (spec, None),
        };
        let parts: Vec<&str> = params.map(|p| p.split(',').collect()).unwrap_or_default();
        let num = |ix: usize, default: f64| -> Result<f64, String> {
            match parts.get(ix) {
                None => Ok(default),
                Some(v) => v
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("schedule parameter '{v}' is not a number")),
            }
        };
        let sched = match name {
            "steady" => {
                if params.is_some() {
                    return Err("steady takes no parameters".into());
                }
                Schedule::Steady
            }
            "bursty" => Schedule::Bursty {
                period_ms: num(0, 1_000.0)? as u64,
                duty_pct: num(1, 20.0)? as u32,
                burst: num(2, 4.0)?,
            },
            "diurnal" => Schedule::Diurnal {
                period_ms: num(0, 10_000.0)? as u64,
                amp: num(1, 0.8)?,
            },
            "hotkey" => Schedule::HotKey {
                hot_pct: num(0, 10.0)? as u32,
            },
            other => {
                return Err(format!(
                    "unknown schedule '{other}' (expected {})",
                    SCHEDULE_NAMES.join("|")
                ))
            }
        };
        sched.validate()?;
        Ok(sched)
    }

    /// Rejects degenerate parameters (zero periods, negative-rate
    /// troughs, bursts whose compensating low rate would be negative).
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Schedule::Steady => Ok(()),
            Schedule::Bursty {
                period_ms,
                duty_pct,
                burst,
            } => {
                if period_ms == 0 {
                    return Err("bursty period must be positive".into());
                }
                if duty_pct == 0 || duty_pct >= 100 {
                    return Err(format!(
                        "bursty duty must be in 1..=99 percent, got {duty_pct}"
                    ));
                }
                if !burst.is_finite() || burst < 1.0 {
                    return Err(format!("bursty multiplier must be >= 1, got {burst}"));
                }
                if burst * f64::from(duty_pct) > 100.0 {
                    return Err(format!(
                        "bursty multiplier {burst} over a {duty_pct}% duty exceeds the mean \
                         (need burst <= {:.2})",
                        100.0 / f64::from(duty_pct)
                    ));
                }
                Ok(())
            }
            Schedule::Diurnal { period_ms, amp } => {
                if period_ms == 0 {
                    return Err("diurnal period must be positive".into());
                }
                if !amp.is_finite() || !(0.0..1.0).contains(&amp) {
                    return Err(format!("diurnal amplitude must be in [0, 1), got {amp}"));
                }
                Ok(())
            }
            Schedule::HotKey { hot_pct } => {
                if hot_pct == 0 || hot_pct > 100 {
                    return Err(format!(
                        "hotkey percentage must be in 1..=100, got {hot_pct}"
                    ));
                }
                Ok(())
            }
        }
    }

    /// Instantaneous rate multiplier at `t` seconds into the run.
    /// Non-negative for every valid schedule; mean 1 over full periods.
    pub fn multiplier(&self, t: f64) -> f64 {
        match *self {
            Schedule::Steady | Schedule::HotKey { .. } => 1.0,
            Schedule::Bursty {
                period_ms,
                duty_pct,
                burst,
            } => {
                let period = period_ms as f64 / 1e3;
                let duty = f64::from(duty_pct) / 100.0;
                let phase = t.rem_euclid(period);
                if phase < duty * period {
                    burst
                } else {
                    bursty_low(duty, burst)
                }
            }
            Schedule::Diurnal { period_ms, amp } => {
                let period = period_ms as f64 / 1e3;
                1.0 + amp * (TAU * t / period).sin()
            }
        }
    }

    /// The exact integral `∫₀ᵗ multiplier(x) dx` in seconds — the shaped
    /// "virtual time" the pacer converts to an item quota. Closed form,
    /// so there is no accumulated per-tick drift: full periods contribute
    /// exactly their wall length (mean 1).
    pub fn cumulative(&self, t: f64) -> f64 {
        match *self {
            Schedule::Steady | Schedule::HotKey { .. } => t,
            Schedule::Bursty {
                period_ms,
                duty_pct,
                burst,
            } => {
                let period = period_ms as f64 / 1e3;
                let duty = f64::from(duty_pct) / 100.0;
                let low = bursty_low(duty, burst);
                let full = (t / period).floor();
                let phase = t - full * period;
                // One full period integrates to duty·burst + (1−duty)·low
                // = 1 period exactly, by the low-rate construction.
                let head =
                    phase.min(duty * period) * burst + (phase - duty * period).max(0.0) * low;
                full * period + head
            }
            Schedule::Diurnal { period_ms, amp } => {
                let period = period_ms as f64 / 1e3;
                t + amp * period / TAU * (1.0 - (TAU * t / period).cos())
            }
        }
    }

    /// The heavy-item percentage when this is the hot-key schedule.
    pub fn hot_pct(&self) -> Option<u32> {
        match *self {
            Schedule::HotKey { hot_pct } => Some(hot_pct),
            _ => None,
        }
    }
}

/// The compensating low multiplier of a bursty schedule: chosen so
/// `duty·burst + (1−duty)·low = 1`.
fn bursty_low(duty: f64, burst: f64) -> f64 {
    ((1.0 - duty * burst) / (1.0 - duty)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        for name in SCHEDULE_NAMES {
            let s = Schedule::parse(name).expect(name);
            assert_eq!(s.name(), name);
        }
        assert!(Schedule::parse("nope").is_err());
        assert!(Schedule::parse("steady:1").is_err());
        assert!(Schedule::parse("bursty:abc").is_err());
    }

    #[test]
    fn degenerate_parameters_rejected() {
        assert!(Schedule::parse("bursty:0,20,4").is_err());
        assert!(Schedule::parse("bursty:100,0,4").is_err());
        assert!(Schedule::parse("bursty:100,100,1").is_err());
        assert!(Schedule::parse("bursty:100,50,3").is_err()); // mean > 1
        assert!(Schedule::parse("diurnal:0").is_err());
        assert!(Schedule::parse("diurnal:100,1.5").is_err());
        assert!(Schedule::parse("hotkey:0").is_err());
        assert!(Schedule::parse("hotkey:101").is_err());
    }

    #[test]
    fn full_periods_integrate_to_the_mean() {
        for spec in ["bursty:250,20,4", "diurnal:400,0.8"] {
            let s = Schedule::parse(spec).unwrap();
            for periods in 1..5 {
                let t = 0.25
                    * periods as f64
                    * if spec.starts_with("diurnal") {
                        1.6
                    } else {
                        1.0
                    };
                let got = s.cumulative(t);
                // Full periods of both shapes: 250 ms and 400 ms divide t.
                assert!((got - t).abs() < 1e-9, "{spec}: cumulative({t}) = {got}");
            }
        }
    }

    #[test]
    fn multiplier_is_never_negative() {
        for spec in ["steady", "bursty:100,25,4", "diurnal:100,0.99", "hotkey:50"] {
            let s = Schedule::parse(spec).unwrap();
            for i in 0..1000 {
                let t = i as f64 * 0.00173;
                assert!(s.multiplier(t) >= 0.0, "{spec} at {t}");
            }
        }
    }

    #[test]
    fn cumulative_matches_numeric_integral() {
        let s = Schedule::parse("bursty:100,30,3").unwrap();
        let d = Schedule::parse("diurnal:170,0.6").unwrap();
        for sched in [s, d] {
            let mut acc = 0.0;
            let dt = 1e-5;
            let mut t = 0.0;
            for _ in 0..40_000 {
                acc += sched.multiplier(t + dt / 2.0) * dt;
                t += dt;
                let exact = sched.cumulative(t);
                assert!(
                    (acc - exact).abs() < 1e-3,
                    "{}: numeric {acc} vs exact {exact} at {t}",
                    sched.name()
                );
            }
        }
    }
}
