//! What a load run hands back: throughput, latency percentiles, chaos
//! events, and the invariant verdict.

use crate::plan::FaultAction;

/// Query-latency percentiles pooled across every query worker's
/// [`dwrs_stats::QuantileSketch`] (rank error adds across the merge, so
/// the pool is as accurate as one worker's sketch over all latencies).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Latencies recorded (queries + scrapes).
    pub count: u64,
    /// Median latency in microseconds.
    pub p50_us: f64,
    /// 90th-percentile latency in microseconds.
    pub p90_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// Worst observed latency in microseconds (exact, not sketched).
    pub max_us: f64,
}

/// One executed fault, as the chaos controller recorded it.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosEvent {
    /// Writer (site slot) the fault hit.
    pub site: usize,
    /// The action taken.
    pub action: FaultAction,
    /// The writer's fed-item watermark at the trigger.
    pub at_items: u64,
    /// Outage / silence dwell in milliseconds.
    pub dwell_ms: u64,
    /// Stream items watermark of the mid-outage snapshot the controller
    /// took while the site was down.
    pub snapshot_items: u64,
    /// Failed attach attempts the writer burned reconnecting (0 = first
    /// try succeeded; clean kills usually reattach immediately, drops
    /// may race the daemon noticing the dead link).
    pub retries: u32,
}

/// Everything a completed [`crate::run_load`] reports.
///
/// `violations` is the verdict: an empty list means every post-run
/// invariant held (sample containment across failover, monotone
/// watermarks, error envelopes, rate accuracy). The CLI exits non-zero
/// on any violation, which is what lets CI gate on a load run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Schedule spec the run used (e.g. `bursty:1000,20,4`).
    pub schedule: String,
    /// Target mean rate in items/s across all writers.
    pub rate: u64,
    /// Whether a chaos plan ran.
    pub chaos: bool,
    /// Fault-plan / workload seed.
    pub seed: u64,
    /// Writer workers (site slots).
    pub writers: usize,
    /// Query workers interleaving live queries.
    pub query_workers: usize,
    /// Items requested.
    pub n: u64,
    /// Items actually fed into attach clients (equals `n` minus items
    /// lost to kill-drop faults still unflushed at the drop).
    pub fed: u64,
    /// Final stream watermark the daemon reported after drain.
    pub delivered: u64,
    /// Wall-clock feeding time in seconds (start of feeding to the last
    /// writer finishing).
    pub elapsed_s: f64,
    /// `fed / elapsed_s`.
    pub achieved_rate: f64,
    /// Signed deviation of `achieved_rate` from `rate`, in percent.
    pub rate_error_pct: f64,
    /// Live queries answered.
    pub queries: u64,
    /// Telemetry scrapes answered (query workers + the runner's own).
    pub scrapes: u64,
    /// Query/scrape attempts that failed.
    pub query_errors: u64,
    /// Pooled query-latency percentiles (`None` when no query workers
    /// ran).
    pub latency: Option<LatencySummary>,
    /// Executed faults, in execution order.
    pub events: Vec<ChaosEvent>,
    /// Invariant violations; empty = pass.
    pub violations: Vec<String>,
}

impl LoadReport {
    /// Whether every post-run invariant held.
    pub fn invariants_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Serializes the report as one single-line JSON object — the
    /// `BENCH_load.json` row shape (one row per schedule × rate ×
    /// chaos setting; see `docs/LOAD.md`).
    pub fn to_json(&self) -> String {
        let latency = match &self.latency {
            None => "null".to_string(),
            Some(l) => format!(
                concat!(
                    "{{\"count\":{},\"p50_us\":{},\"p90_us\":{},",
                    "\"p99_us\":{},\"max_us\":{}}}"
                ),
                l.count,
                json_f64(l.p50_us),
                json_f64(l.p90_us),
                json_f64(l.p99_us),
                json_f64(l.max_us),
            ),
        };
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                format!(
                    concat!(
                        "{{\"site\":{},\"action\":\"{}\",\"at_items\":{},",
                        "\"dwell_ms\":{},\"snapshot_items\":{},\"retries\":{}}}"
                    ),
                    e.site,
                    e.action.name(),
                    e.at_items,
                    e.dwell_ms,
                    e.snapshot_items,
                    e.retries,
                )
            })
            .collect();
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", json_escape(v)))
            .collect();
        format!(
            concat!(
                "{{\"schedule\":\"{}\",\"rate\":{},\"chaos\":{},\"seed\":{},",
                "\"writers\":{},\"query_workers\":{},",
                "\"n\":{},\"fed\":{},\"delivered\":{},\"elapsed_s\":{},",
                "\"achieved_rate\":{},\"rate_error_pct\":{},",
                "\"queries\":{},\"scrapes\":{},\"query_errors\":{},",
                "\"latency\":{},\"events\":[{}],\"violations\":[{}]}}"
            ),
            json_escape(&self.schedule),
            self.rate,
            self.chaos,
            self.seed,
            self.writers,
            self.query_workers,
            self.n,
            self.fed,
            self.delivered,
            json_f64(self.elapsed_s),
            json_f64(self.achieved_rate),
            json_f64(self.rate_error_pct),
            self.queries,
            self.scrapes,
            self.query_errors,
            latency,
            events.join(","),
            violations.join(","),
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_row_is_well_formed() {
        let report = LoadReport {
            schedule: "bursty:1000,20,4".into(),
            rate: 50_000,
            chaos: true,
            seed: 42,
            writers: 4,
            query_workers: 2,
            n: 200_000,
            fed: 199_900,
            delivered: 199_900,
            elapsed_s: 4.01,
            achieved_rate: 49_850.4,
            rate_error_pct: -0.3,
            queries: 812,
            scrapes: 161,
            query_errors: 0,
            latency: Some(LatencySummary {
                count: 973,
                p50_us: 180.0,
                p90_us: 410.0,
                p99_us: 1220.0,
                max_us: 5300.0,
            }),
            events: vec![ChaosEvent {
                site: 1,
                action: FaultAction::KillDrop,
                at_items: 31_000,
                dwell_ms: 17,
                snapshot_items: 120_400,
                retries: 2,
            }],
            violations: vec![],
        };
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains('\n'));
        for key in [
            "\"schedule\":\"bursty:1000,20,4\"",
            "\"chaos\":true",
            "\"p99_us\":1220",
            "\"action\":\"kill-drop\"",
            "\"violations\":[]",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(report.invariants_ok());
    }

    #[test]
    fn violations_escape_cleanly() {
        let mut r = LoadReport {
            schedule: "steady".into(),
            rate: 1,
            chaos: false,
            seed: 0,
            writers: 1,
            query_workers: 0,
            n: 1,
            fed: 1,
            delivered: 1,
            elapsed_s: 1.0,
            achieved_rate: 1.0,
            rate_error_pct: 0.0,
            queries: 0,
            scrapes: 0,
            query_errors: 0,
            latency: None,
            events: vec![],
            violations: vec![],
        };
        r.violations.push("rate off by \"12%\"\nsecond line".into());
        let json = r.to_json();
        assert!(json.contains("\\\"12%\\\""));
        assert!(json.contains("\\n"));
        assert!(!r.invariants_ok());
        assert!(json.contains("\"latency\":null"));
    }
}
