//! Property-based coverage of the load harness's deterministic core: the
//! pacer's absolute integer arithmetic must not drift or overflow at any
//! rate from 1 to 1e9 items/s, shaped schedules must integrate to the
//! configured mean over full periods, and fault plans must be bit-pure
//! functions of their seed.

use std::time::Duration;

use dwrs_load::{FaultPlan, Pacer, Schedule, SchedulePacer};
use proptest::prelude::*;

/// A rate log-distributed over the full supported span (1 … 1e9 items/s)
/// from two plain numeric draws, so the extremes are exercised as often
/// as the middle. (The vendored proptest has numeric-range strategies
/// only — no combinators — so the shaping happens here.)
fn log_rate(mag: u32, jitter: u64) -> u64 {
    let lo = 1u64 << (mag % 31);
    (lo + jitter % lo).min(1_000_000_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `due_by` is exact at whole seconds — the quota after `secs` seconds
    /// is exactly `secs × rate`, however the two multiply. A drifting
    /// (incremental) pacer fails this after enough ticks.
    #[test]
    fn steady_quota_is_exact_at_whole_seconds(
        mag in 0u32..31,
        jitter in any::<u64>(),
        secs in 1u64..100_000,
    ) {
        let rate = log_rate(mag, jitter);
        let p = Pacer::new(rate);
        let expect = rate.checked_mul(secs);
        prop_assume!(expect.is_some()); // u64 item counts only
        prop_assert_eq!(p.due_by(Duration::from_secs(secs)), expect.unwrap());
    }

    /// `deadline` inverts `due_by`: item `n` is due at its deadline and
    /// not one nanosecond earlier, so a sender sleeping until
    /// `deadline(fed)` never stalls and never busy-spins.
    #[test]
    fn deadline_inverts_due_by(
        mag in 0u32..31,
        jitter in any::<u64>(),
        n in 0u64..u64::MAX / 2,
    ) {
        let rate = log_rate(mag, jitter);
        let p = Pacer::new(rate);
        let d = p.deadline(n);
        prop_assert!(p.due_by(d) > n, "rate {}, item {}", rate, n);
        if let Some(before) = d.checked_sub(Duration::from_nanos(1)) {
            prop_assert!(p.due_by(before) <= n, "rate {}, item {}", rate, n);
        }
    }

    /// Extreme `elapsed × rate` products saturate instead of overflowing
    /// or wrapping: the quota is monotone all the way to `Duration::MAX`.
    #[test]
    fn quota_never_overflows(
        mag in 0u32..31,
        jitter in any::<u64>(),
        secs in any::<u64>(),
    ) {
        let rate = log_rate(mag, jitter);
        let p = Pacer::new(rate);
        let big = Duration::new(secs, 999_999_999);
        let due = p.due_by(big);
        // Monotone in elapsed even at the saturation boundary.
        prop_assert!(due >= p.due_by(Duration::from_secs(secs)));
        prop_assert!(p.due_by(Duration::MAX) >= due);
    }

    /// Bursty schedules integrate to exactly the configured mean over
    /// every whole number of periods — the burst and the compensating
    /// trough cancel by construction, whatever the parameters.
    #[test]
    fn bursty_full_periods_hit_the_mean(
        rate in 1u64..1_000_000_001,
        period_ms in 1u64..60_000,
        duty_pct in 1u32..100,
        burst_frac in 0.0f64..1.0,
        periods in 1u64..50,
    ) {
        // Any valid burst multiplier: 1 ≤ burst ≤ 100/duty.
        let burst = 1.0 + burst_frac * (100.0 / f64::from(duty_pct) - 1.0);
        let sched = Schedule::Bursty { period_ms, duty_pct, burst };
        prop_assume!(sched.validate().is_ok());
        let t = period_ms as f64 / 1e3 * periods as f64;
        let virtual_s = sched.cumulative(t);
        prop_assert!(
            (virtual_s - t).abs() <= 1e-6 * t.max(1.0),
            "cumulative({t}) = {virtual_s}"
        );
        // Through the pacer: full periods yield rate × t items, up to the
        // f64 rounding of the shaped path.
        let sp = SchedulePacer::new(rate, sched);
        let due = sp.due_by(Duration::from_secs_f64(t));
        let expect = rate as f64 * t;
        prop_assert!(
            (due as f64 - expect).abs() <= expect * 1e-6 + 2.0,
            "due {due} vs {expect}"
        );
    }

    /// Same for the diurnal shape: the sine's peak and trough cancel over
    /// whole cycles.
    #[test]
    fn diurnal_full_periods_hit_the_mean(
        period_ms in 1u64..600_000,
        amp in 0.0f64..0.999,
        periods in 1u64..100,
    ) {
        let sched = Schedule::Diurnal { period_ms, amp };
        prop_assume!(sched.validate().is_ok());
        let t = period_ms as f64 / 1e3 * periods as f64;
        let virtual_s = sched.cumulative(t);
        prop_assert!(
            (virtual_s - t).abs() <= 1e-6 * t.max(1.0),
            "cumulative({t}) = {virtual_s}"
        );
    }

    /// The cumulative integral is monotone non-decreasing at arbitrary
    /// (non-period-aligned) times — a negative instantaneous rate would
    /// let the item quota move backwards.
    #[test]
    fn cumulative_is_monotone(
        period_ms in 1u64..10_000,
        duty_pct in 1u32..100,
        burst_frac in 0.0f64..1.0,
        amp in 0.0f64..0.999,
        times in proptest::collection::vec(0.0f64..600.0, 2..40),
    ) {
        let burst = 1.0 + burst_frac * (100.0 / f64::from(duty_pct) - 1.0);
        let b = Schedule::Bursty { period_ms, duty_pct, burst };
        let d = Schedule::Diurnal { period_ms, amp };
        prop_assume!(b.validate().is_ok() && d.validate().is_ok());
        let mut sorted = times;
        sorted.sort_by(f64::total_cmp);
        for sched in [b, d] {
            for pair in sorted.windows(2) {
                prop_assert!(
                    sched.cumulative(pair[1]) >= sched.cumulative(pair[0]) - 1e-9,
                    "{} not monotone between {} and {}",
                    sched.name(), pair[0], pair[1]
                );
            }
        }
    }

    /// Fault plans are pure: the same `(seed, sites, per_site, faults)`
    /// quadruple always yields the bit-identical plan, every trigger fires
    /// mid-stream, and same-site triggers never collide.
    #[test]
    fn fault_plans_are_bit_identical_per_seed(
        seed in any::<u64>(),
        sites in 1usize..16,
        per_site in 100u64..10_000_000,
        faults in 1usize..32,
    ) {
        let a = FaultPlan::generate(seed, sites, per_site, faults);
        let b = FaultPlan::generate(seed, sites, per_site, faults);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.faults.len(), faults);
        for f in &a.faults {
            prop_assert!(f.site < sites);
            prop_assert!(f.at_items >= per_site / 10);
            prop_assert!(f.dwell_ms >= 5 && f.dwell_ms < 40);
        }
        for site in 0..sites {
            for pair in a.for_site(site).windows(2) {
                prop_assert!(pair[1].at_items > pair[0].at_items);
            }
        }
        // A different seed diverges somewhere in the trigger watermarks
        // (dwells and watermarks have ~2^64 joint states; collisions over
        // one draw are astronomically unlikely, but don't fail the whole
        // property on one — require divergence across a few seeds).
        let diverged = (1..=4).any(|d| {
            FaultPlan::generate(seed.wrapping_add(d), sites, per_site, faults) != a
        });
        prop_assert!(diverged);
    }
}
