//! End-to-end runs of the load harness against an in-process daemon:
//! steady pacing hits the target rate, chaos plans execute and the
//! invariants survive, and every schedule/query combination produces a
//! clean report.

use dwrs_load::{run_load, ChaosConfig, FaultAction, LoadConfig, Schedule};

#[test]
fn steady_run_hits_the_rate_and_reports_latency() {
    let mut cfg = LoadConfig::new("load-steady");
    cfg.writers = 2;
    cfg.rate = 20_000;
    cfg.n = 20_000;
    cfg.query_workers = 2;
    cfg.seed = 11;
    let report = run_load(&cfg).expect("run");
    assert!(
        report.invariants_ok(),
        "violations: {:?}",
        report.violations
    );
    assert_eq!(report.fed, 20_000);
    assert_eq!(report.delivered, 20_000);
    assert!(
        report.rate_error_pct.abs() <= 5.0,
        "rate error {:+.2}%",
        report.rate_error_pct
    );
    let latency = report.latency.expect("query workers ran");
    assert!(latency.count > 0);
    assert!(latency.p50_us <= latency.p90_us);
    assert!(latency.p90_us <= latency.p99_us);
    assert!(latency.p99_us <= latency.max_us);
    assert!(report.queries > 0);
    assert!(report.scrapes > 0);
    assert_eq!(report.query_errors, 0);
}

#[test]
fn chaos_run_executes_the_plan_and_invariants_hold() {
    let mut cfg = LoadConfig::new("load-chaos");
    cfg.writers = 3;
    cfg.rate = 30_000;
    cfg.n = 30_000;
    cfg.query_workers = 1;
    cfg.chaos = Some(ChaosConfig { faults: 3 });
    cfg.seed = 7;
    let report = run_load(&cfg).expect("run");
    assert!(
        report.invariants_ok(),
        "violations: {:?}",
        report.violations
    );
    assert!(report.chaos);
    // All three planned faults fired: one of each action, on distinct
    // sites (round-robin assignment over 3 writers).
    assert_eq!(report.events.len(), 3);
    let mut kill_sites: Vec<usize> = report
        .events
        .iter()
        .filter(|e| e.action != FaultAction::Pause)
        .map(|e| e.site)
        .collect();
    kill_sites.sort_unstable();
    kill_sites.dedup();
    assert!(kill_sites.len() >= 2, "events: {:?}", report.events);
    // The kill-drop may lose a still-unflushed tail, never gain items.
    assert!(report.delivered <= report.fed);
    assert!(report.fed <= report.n);
    // Mid-outage snapshots were taken while sites were down.
    assert!(report.events.iter().any(|e| e.snapshot_items > 0));
}

#[test]
fn chaos_is_deterministic_per_seed() {
    let mut cfg = LoadConfig::new("load-det-a");
    cfg.writers = 2;
    cfg.rate = 40_000;
    cfg.n = 16_000;
    cfg.query_workers = 0;
    cfg.chaos = Some(ChaosConfig { faults: 2 });
    cfg.seed = 123;
    let a = run_load(&cfg).expect("run a");
    cfg.stream = "load-det-b".into();
    let b = run_load(&cfg).expect("run b");
    // The plan (sites, triggers, actions, dwells) is identical; only
    // wall-clock-dependent observations may differ.
    let plan_a: Vec<_> = a
        .events
        .iter()
        .map(|e| (e.site, e.at_items, e.action, e.dwell_ms))
        .collect();
    let plan_b: Vec<_> = b
        .events
        .iter()
        .map(|e| (e.site, e.at_items, e.action, e.dwell_ms))
        .collect();
    assert_eq!(plan_a, plan_b);
    assert!(a.invariants_ok() && b.invariants_ok());
}

#[test]
fn shaped_schedules_and_l1_streams_run_clean() {
    for (stream, schedule, query) in [
        ("load-bursty", "bursty:200,20,4", "swor"),
        ("load-hot", "hotkey:20", "swor"),
        ("load-l1", "steady", "l1:0.3,0.25"),
    ] {
        let mut cfg = LoadConfig::new(stream);
        cfg.writers = 2;
        cfg.rate = 30_000;
        cfg.n = 15_000;
        cfg.query_workers = 1;
        cfg.schedule = Schedule::parse(schedule).unwrap();
        cfg.query = query.into();
        cfg.seed = 5;
        let report = run_load(&cfg).expect(stream);
        assert!(
            report.invariants_ok(),
            "{stream} violations: {:?}",
            report.violations
        );
        assert_eq!(report.delivered, 15_000, "{stream}");
        let json = report.to_json();
        assert!(
            json.contains(&format!("\"schedule\":\"{schedule}")),
            "{json}"
        );
    }
}

#[test]
fn bad_configs_are_refused() {
    let mut cfg = LoadConfig::new("load-bad");
    cfg.writers = 0;
    assert!(run_load(&cfg).is_err());
    let mut cfg = LoadConfig::new("load-bad");
    cfg.rate = 0;
    assert!(run_load(&cfg).is_err());
    let mut cfg = LoadConfig::new("");
    cfg.stream.clear();
    assert!(run_load(&cfg).is_err());
    let mut cfg = LoadConfig::new("load-bad");
    cfg.query = "l1:9.0,0.5".into();
    assert!(run_load(&cfg).is_err());
}
