//! Criterion benchmarks for the weighted SWR reduction: the binomial trick
//! must make site work independent of the item weight (the whole point of
//! Section 2.2's speedup over naive duplication).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dwrs_core::swr::{SwrConfig, SwrDown, WeightedSwrSite};
use dwrs_core::{Item, Rng};

fn site_observe_vs_weight(c: &mut Criterion) {
    let mut g = c.benchmark_group("swr_site_observe_by_weight");
    for w in [1u64, 1_000, 1_000_000, 1_000_000_000] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("w{w}")), &w, |b, &w| {
            let cfg = SwrConfig::new(64, 16);
            let mut site = WeightedSwrSite::new(&cfg, 1);
            // Tight threshold so the candidate count stays small and the
            // binomial short-circuit is what is measured.
            site.receive(&SwrDown { threshold: 1e-9 });
            let item = Item::new(7, w as f64);
            let mut out = Vec::with_capacity(64);
            b.iter(|| {
                site.observe(black_box(item), &mut out);
                out.clear();
            });
        });
    }
    g.finish();
}

fn naive_duplication_reference(c: &mut Criterion) {
    // The O(w) baseline the binomial trick replaces: w independent tag
    // draws per sampler decision. Kept small or it would dominate the run.
    let mut g = c.benchmark_group("swr_naive_duplication_reference");
    for w in [1u64, 1_000, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("w{w}")), &w, |b, &w| {
            let mut rng = Rng::new(2);
            let tau = 1e-9f64;
            b.iter(|| {
                let mut min_tag = f64::INFINITY;
                for _ in 0..w {
                    let t = rng.f64();
                    if t < tau && t < min_tag {
                        min_tag = t;
                    }
                }
                black_box(min_tag)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, site_observe_vs_weight, naive_duplication_reference);
criterion_main!(benches);
