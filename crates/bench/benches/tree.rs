//! Tree-vs-flat topology comparison on the concurrent runtime: the same
//! skewed weighted-SWOR workload as a flat `k`-site scenario and as a
//! `g × (k/g)` fan-in tree scenario, across engines and root-sync
//! cadences — every combination one `Scenario` handed to `run_scenario`,
//! streaming at O(batch × queue) memory.
//!
//! What the sweeps measure:
//!
//! * **`tree_vs_flat`** — end-to-end throughput (items/s) of flat vs. tree
//!   on the threaded and loopback-TCP substrates. The tree adds `g`
//!   aggregator threads and one root thread; on a multi-core host the
//!   extra pipeline stages overlap with site work, so the tree's overhead
//!   is the sync traffic, not wall-clock serialization.
//! * **`tree_sync_rate`** — message-rate cost of freshness: total messages
//!   (intra-group protocol + aggregator→root sync tier) as `sync_every`
//!   sweeps from chatty to lazy. The sync tier costs `g·s/sync_every`
//!   messages per item, so halving the period roughly doubles `"sync"`
//!   traffic while the intra-group tier stays put — the bounded-staleness
//!   vs. message-rate tradeoff quantified.
//!
//! CI runs each target once (`cargo bench -p dwrs-bench -- --test`) and
//! separately collects `BENCH_tree.json` from CLI runs of the same shapes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dwrs_runtime::{run_scenario, EngineKind, Scenario, Topology, Workload};

const N: usize = 1_000_000;
const S: usize = 64;
const K: usize = 8;

fn scenario(engine: EngineKind, topology: Topology) -> Scenario {
    Scenario::new(engine, K, S)
        .with_n(N as u64)
        .with_seed(7)
        .with_workload(Workload::Zipf { alpha: 1.2 })
        .with_topology(topology)
}

fn tree_vs_flat(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_vs_flat");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    let tree = Topology::Tree {
        groups: 2,
        sync_every: 10_000,
    };
    for engine in [EngineKind::Threads, EngineKind::Tcp] {
        for (name, topology) in [("flat", Topology::Flat), ("tree", tree)] {
            let sc = scenario(engine, topology);
            g.bench_with_input(BenchmarkId::new(name, engine.to_string()), &sc, |b, sc| {
                b.iter(|| {
                    let report = run_scenario(sc).expect("run");
                    black_box(report.metrics.total())
                });
            });
        }
    }
    g.finish();
}

fn tree_sync_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_sync_rate");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for sync_every in [1_000u64, 10_000, 100_000] {
        let sc = scenario(
            EngineKind::Threads,
            Topology::Tree {
                groups: 2,
                sync_every,
            },
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("every{sync_every}")),
            &sc,
            |b, sc| {
                b.iter(|| {
                    let report = run_scenario(sc).expect("run");
                    // The quantity under test: total message rate
                    // including the sync tier.
                    black_box((report.metrics.total(), report.metrics.kind("sync")))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, tree_vs_flat, tree_sync_rate);
criterion_main!(benches);
