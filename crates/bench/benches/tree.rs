//! Tree-vs-flat topology comparison on the concurrent runtime: the same
//! skewed weighted-SWOR workload as a flat `k`-site deployment and as a
//! `g × (k/g)` fan-in tree, across engines and root-sync cadences.
//!
//! What the sweeps measure:
//!
//! * **`tree_vs_flat`** — end-to-end throughput (items/s) of flat vs. tree
//!   on the threaded and loopback-TCP substrates. The tree adds `g`
//!   aggregator threads and one root thread; on a multi-core host the
//!   extra pipeline stages overlap with site work, so the tree's overhead
//!   is the sync traffic, not wall-clock serialization.
//! * **`tree_sync_rate`** — message-rate cost of freshness: total messages
//!   (intra-group protocol + aggregator→root sync tier) as `sync_every`
//!   sweeps from chatty to lazy. The sync tier costs `g·s/sync_every`
//!   messages per item, so halving the period roughly doubles `"sync"`
//!   traffic while the intra-group tier stays put — the bounded-staleness
//!   vs. message-rate tradeoff quantified.
//!
//! CI runs each target once (`cargo bench -p dwrs-bench -- --test`) and
//! separately collects `BENCH_tree.json` from CLI runs of the same shapes.

use criterion::{
    black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput,
};
use dwrs_core::swor::SworConfig;
use dwrs_core::Item;
use dwrs_runtime::{
    run_swor, run_tree_swor, split_stream, split_tree_stream, EngineKind, RuntimeConfig,
    TreeTopology,
};
use dwrs_sim::{assign_sites, Partition};

const N: usize = 1_000_000;
const S: usize = 64;
const K: usize = 8;

fn skewed(n: usize) -> Vec<Item> {
    dwrs_workloads::zipf_ranked(n, 1.2, 5)
}

fn flat_parts(items: &[Item]) -> Vec<Vec<Item>> {
    let sites = assign_sites(Partition::RoundRobin, K, items.len(), 6);
    split_stream(K, sites.into_iter().zip(items.iter().copied()))
}

fn tree_parts(topo: &TreeTopology, items: &[Item]) -> Vec<Vec<Vec<Item>>> {
    let sites = assign_sites(Partition::RoundRobin, topo.total_sites(), items.len(), 6);
    split_tree_stream(topo, sites.into_iter().zip(items.iter().copied()))
}

fn tree_vs_flat(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_vs_flat");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    let items = skewed(N);
    let topo = TreeTopology::new(2, K / 2, 10_000);
    for engine in [EngineKind::Threads, EngineKind::Tcp] {
        g.bench_with_input(
            BenchmarkId::new("flat", engine.to_string()),
            &engine,
            |b, &engine| {
                b.iter_batched(
                    || flat_parts(&items),
                    |parts| {
                        let out = run_swor(
                            engine,
                            SworConfig::new(S, K),
                            7,
                            parts,
                            &RuntimeConfig::default(),
                        )
                        .expect("flat run");
                        black_box(out.metrics.total())
                    },
                    BatchSize::LargeInput,
                );
            },
        );
        g.bench_with_input(
            BenchmarkId::new("tree", engine.to_string()),
            &engine,
            |b, &engine| {
                b.iter_batched(
                    || tree_parts(&topo, &items),
                    |streams| {
                        let out =
                            run_tree_swor(engine, S, &topo, 7, streams, &RuntimeConfig::default())
                                .expect("tree run");
                        black_box(out.metrics.total())
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    g.finish();
}

fn tree_sync_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_sync_rate");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    let items = skewed(N);
    for sync_every in [1_000u64, 10_000, 100_000] {
        let topo = TreeTopology::new(2, K / 2, sync_every);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("every{sync_every}")),
            &topo,
            |b, topo| {
                b.iter_batched(
                    || tree_parts(topo, &items),
                    |streams| {
                        let out = run_tree_swor(
                            EngineKind::Threads,
                            S,
                            topo,
                            7,
                            streams,
                            &RuntimeConfig::default(),
                        )
                        .expect("tree run");
                        // The quantity under test: total message rate
                        // including the sync tier.
                        black_box((out.metrics.total(), out.metrics.kind("sync")))
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    g.finish();
}

criterion_group!(benches, tree_vs_flat, tree_sync_rate);
criterion_main!(benches);
