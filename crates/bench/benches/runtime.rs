//! Engine comparison: the same skewed weighted-SWOR scenario on the
//! lockstep simulator vs. the `dwrs-runtime` threaded and loopback-TCP
//! substrates, all routed through the scenario driver (`run_scenario`).
//! Throughput is items/second over the whole streaming run — generation,
//! dispatch and protocol overlap inside the timed window, and resident
//! memory stays O(batch × queue) rather than O(n).
//!
//! The expectation tracked by CI (`BENCH_runtime.json`): with ≥ 4 sites on
//! a multi-core host the threaded engine meets or beats lockstep, because
//! site-side `observe` work — the dominant cost — runs in parallel with
//! workload generation on the dispatcher thread, and only protocol
//! messages cross the (batched) channels. On a single-core host no
//! parallel speedup is possible and the threaded engine instead shows its
//! overhead floor: the scheduler cost of time-slicing the dispatcher,
//! k site threads and the coordinator.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dwrs_runtime::{run_scenario, EngineKind, RuntimeConfig, Scenario, Workload};

const N: usize = 1_000_000;
const S: usize = 64;

fn scenario(engine: EngineKind, k: usize) -> Scenario {
    Scenario::new(engine, k, S)
        .with_n(N as u64)
        .with_seed(7)
        .with_workload(Workload::Zipf { alpha: 1.2 })
}

fn engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_engines");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for k in [4usize, 8] {
        for engine in [
            EngineKind::Lockstep,
            EngineKind::Threads,
            EngineKind::Tcp,
            EngineKind::Epoll,
        ] {
            let sc = scenario(engine, k);
            g.bench_with_input(
                BenchmarkId::new(engine.to_string(), format!("k{k}")),
                &sc,
                |b, sc| {
                    b.iter(|| {
                        let report = run_scenario(sc).expect("run");
                        black_box(report.metrics.total())
                    });
                },
            );
        }
    }
    g.finish();
}

fn batching(c: &mut Criterion) {
    // Sensitivity of the threaded engine to the flush threshold.
    let mut g = c.benchmark_group("runtime_batching");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for batch in [1usize, 16, 64, 256] {
        let sc = scenario(EngineKind::Threads, 8)
            .with_runtime(RuntimeConfig::new().with_batch_max(batch));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("batch{batch}")),
            &sc,
            |b, sc| {
                b.iter(|| {
                    let report = run_scenario(sc).expect("run");
                    black_box(report.metrics.total())
                });
            },
        );
    }
    g.finish();
}

fn streaming_vs_materialized(c: &mut Criterion) {
    // The driver's headline tradeoff, measured directly: the same stream
    // executed streaming (generation inside the run, O(batch × queue)
    // memory) vs pre-materialized (generation outside the timed window,
    // O(n) memory — the pre-driver execution model).
    let mut g = c.benchmark_group("runtime_streaming_vs_materialized");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    let streaming = scenario(EngineKind::Threads, 8);
    g.bench_function("streaming", |b| {
        b.iter(|| black_box(run_scenario(&streaming).expect("run").metrics.total()))
    });
    let items: Vec<_> = streaming.source().expect("source").collect();
    let materialized = scenario(EngineKind::Threads, 8).with_workload(Workload::items(items));
    g.bench_function("materialized", |b| {
        b.iter(|| black_box(run_scenario(&materialized).expect("run").metrics.total()))
    });
    g.finish();
}

criterion_group!(benches, engines, batching, streaming_vs_materialized);
criterion_main!(benches);
