//! Engine comparison: the same skewed weighted-SWOR deployment on the
//! lockstep simulator vs. the `dwrs-runtime` threaded and loopback-TCP
//! substrates. Throughput is items/second over the whole protocol run
//! (workload generation and partitioning excluded).
//!
//! The expectation tracked by CI (`BENCH_runtime.json`): with ≥ 4 sites on
//! a multi-core host the threaded engine meets or beats lockstep, because
//! site-side `observe` work — the dominant cost — runs in parallel and only
//! protocol messages cross the (batched) channels. On a single-core host
//! no parallel speedup is possible and the threaded engine instead shows
//! its overhead floor: within ~10% of lockstep (k=1 is exact parity),
//! which is the scheduler cost of time-slicing k+1 runnable threads.

use criterion::{
    black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput,
};
use dwrs_core::swor::SworConfig;
use dwrs_core::Item;
use dwrs_runtime::{run_swor, split_stream, EngineKind, RuntimeConfig};
use dwrs_sim::{assign_sites, build_swor, Partition};

const N: usize = 1_000_000;
const S: usize = 64;

fn skewed(n: usize) -> Vec<Item> {
    dwrs_workloads::zipf_ranked(n, 1.2, 5)
}

fn engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_engines");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    let items = skewed(N);
    for k in [4usize, 8] {
        let sites = assign_sites(Partition::RoundRobin, k, N, 6);
        let parts = split_stream(k, sites.iter().copied().zip(items.iter().copied()));

        g.bench_with_input(
            BenchmarkId::new("lockstep", format!("k{k}")),
            &k,
            |b, &k| {
                b.iter(|| {
                    let mut runner = build_swor(SworConfig::new(S, k), 7);
                    runner.run(sites.iter().copied().zip(items.iter().copied()));
                    black_box(runner.metrics.total())
                });
            },
        );
        g.bench_with_input(BenchmarkId::new("threads", format!("k{k}")), &k, |b, &k| {
            b.iter_batched(
                || parts.clone(),
                |parts| {
                    let out = run_swor(
                        EngineKind::Threads,
                        SworConfig::new(S, k),
                        7,
                        parts,
                        &RuntimeConfig::default(),
                    )
                    .expect("threads run");
                    black_box(out.metrics.total())
                },
                BatchSize::LargeInput,
            );
        });
        g.bench_with_input(BenchmarkId::new("tcp", format!("k{k}")), &k, |b, &k| {
            b.iter_batched(
                || parts.clone(),
                |parts| {
                    let out = run_swor(
                        EngineKind::Tcp,
                        SworConfig::new(S, k),
                        7,
                        parts,
                        &RuntimeConfig::default(),
                    )
                    .expect("tcp run");
                    black_box(out.metrics.total())
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn batching(c: &mut Criterion) {
    // Sensitivity of the threaded engine to the flush threshold.
    let mut g = c.benchmark_group("runtime_batching");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    let items = skewed(N);
    let k = 8usize;
    let sites = assign_sites(Partition::RoundRobin, k, N, 6);
    let parts = split_stream(k, sites.iter().copied().zip(items.iter().copied()));
    for batch in [1usize, 16, 64, 256] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("batch{batch}")),
            &batch,
            |b, &batch| {
                let rcfg = RuntimeConfig::new().with_batch_max(batch);
                b.iter_batched(
                    || parts.clone(),
                    |parts| {
                        let out =
                            run_swor(EngineKind::Threads, SworConfig::new(S, k), 7, parts, &rcfg)
                                .expect("threads run");
                        black_box(out.metrics.total())
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    g.finish();
}

criterion_group!(benches, engines, batching);
criterion_main!(benches);
