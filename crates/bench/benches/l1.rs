//! Criterion benchmarks for the three L1 trackers' per-item cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dwrs_apps::l1::{FolkloreTracker, HyzTracker, L1Config, L1DupTracker, L1Estimator};
use dwrs_core::Item;

const N: u64 = 20_000;
const K: usize = 16;

fn drive<T: L1Estimator>(tracker: &mut T) -> u64 {
    for i in 0..N {
        tracker.observe((i % K as u64) as usize, Item::unit(i));
    }
    tracker.messages()
}

fn trackers(c: &mut Criterion) {
    let mut g = c.benchmark_group("l1_trackers_20k_items");
    g.throughput(Throughput::Elements(N));
    g.sample_size(10);
    g.bench_function("folklore", |b| {
        b.iter(|| {
            let mut t = FolkloreTracker::new(0.1, K);
            black_box(drive(&mut t))
        });
    });
    g.bench_function("hyz12", |b| {
        b.iter(|| {
            let mut t = HyzTracker::new(0.1, K, 1);
            black_box(drive(&mut t))
        });
    });
    g.bench_function("duplication_swor", |b| {
        b.iter(|| {
            let mut cfg = L1Config::new(0.1, 0.25, K);
            cfg.sample_size_override = Some(200);
            cfg.dup_override = Some(1000);
            let mut t = L1DupTracker::new(cfg, 2);
            black_box(drive(&mut t))
        });
    });
    g.finish();
}

criterion_group!(benches, trackers);
criterion_main!(benches);
