//! Criterion microbenchmarks for the weighted SWOR protocol hot paths.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dwrs_core::swor::{DownMsg, SworConfig, SworCoordinator, SworSite, UpMsg};
use dwrs_core::Item;
use dwrs_sim::{assign_sites, build_swor, Partition};

fn site_observe(c: &mut Criterion) {
    let mut g = c.benchmark_group("swor_site_observe");
    g.throughput(Throughput::Elements(1));
    // Saturated level + high threshold: the steady-state per-item path.
    g.bench_function("steady_state", |b| {
        let cfg = SworConfig::new(64, 16);
        let mut site = SworSite::new(&cfg, 1);
        site.receive(&DownMsg::LevelSaturated { level: 0 });
        site.receive(&DownMsg::UpdateEpoch { threshold: 1e6 });
        let item = Item::new(7, 1.5);
        b.iter(|| black_box(site.observe(black_box(item))));
    });
    g.bench_function("unsaturated_early", |b| {
        let cfg = SworConfig::new(64, 16);
        let mut site = SworSite::new(&cfg, 2);
        let item = Item::new(7, 1.5);
        b.iter(|| black_box(site.observe(black_box(item))));
    });
    g.finish();
}

fn coordinator_receive(c: &mut Criterion) {
    let mut g = c.benchmark_group("swor_coordinator_receive");
    g.throughput(Throughput::Elements(1));
    g.bench_function("regular_rejected", |b| {
        // Full sample with large keys: incoming small keys are rejected in
        // O(1) — the dominant coordinator path late in a stream.
        let cfg = SworConfig::new(64, 16);
        let mut coord = SworCoordinator::new(cfg, 3);
        let mut out = Vec::new();
        for i in 0..64u64 {
            coord.receive(
                UpMsg::Regular {
                    item: Item::new(i, 1.0),
                    key: 1e9 + i as f64,
                },
                &mut out,
            );
        }
        let msg = UpMsg::Regular {
            item: Item::new(999, 1.0),
            key: 1.0,
        };
        b.iter(|| {
            coord.receive(black_box(msg), &mut out);
            out.clear();
        });
    });
    g.finish();
}

fn full_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("swor_full_protocol");
    let n = 100_000usize;
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    for (k, s) in [(4usize, 16usize), (64, 16), (64, 256)] {
        let items = dwrs_workloads::uniform_weights(n, 1.0, 10.0, 5);
        let sites = assign_sites(Partition::RoundRobin, k, n, 6);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_s{s}")),
            &(k, s),
            |b, &(k, s)| {
                b.iter(|| {
                    let mut runner = build_swor(SworConfig::new(s, k), 7);
                    runner.run(sites.iter().copied().zip(items.iter().copied()));
                    black_box(runner.metrics.total())
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, site_observe, coordinator_receive, full_protocol);
criterion_main!(benches);
