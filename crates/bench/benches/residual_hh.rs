//! Criterion benchmarks for the residual heavy hitter tracker.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dwrs_apps::residual_hh::{ResidualHeavyHitters, ResidualHhConfig};

fn observe_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("residual_hh");
    let n = 50_000usize;
    let k = 8usize;
    let items = dwrs_workloads::zipf_ranked(n, 1.3, 1);
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.bench_function("observe_50k_zipf", |b| {
        b.iter(|| {
            let mut t = ResidualHeavyHitters::new(ResidualHhConfig::new(0.1, 0.1, k), 2);
            for (i, it) in items.iter().enumerate() {
                t.observe(i % k, *it);
            }
            black_box(t.messages())
        });
    });
    g.bench_function("query_after_50k", |b| {
        let mut t = ResidualHeavyHitters::new(ResidualHhConfig::new(0.1, 0.1, k), 3);
        for (i, it) in items.iter().enumerate() {
            t.observe(i % k, *it);
        }
        b.iter(|| black_box(t.query()));
    });
    g.finish();
}

criterion_group!(benches, observe_throughput);
criterion_main!(benches);
