//! Single-core sampler cost, isolated from every engine concern
//! (ROADMAP item 4, first step): how many items/s can one core push
//! through the weighted-SWOR `observe` path?
//!
//! Two regimes bracket the sampler:
//!
//! * `observe_only` — a lone `SworSite` with no coordinator feedback:
//!   the raw per-item cost of key generation + local filtering, with the
//!   message push included but nothing consuming it. No threshold ever
//!   arrives, so this is the messaging-heavy upper bound.
//! * `lockstep_k1` — the single-threaded `Runner` with one site: every
//!   message folds into the coordinator and thresholds feed back
//!   immediately, i.e. the complete sampler pipeline at its single-core
//!   floor. Engine-level wins (batching, event loops, parallelism) show
//!   up in `runtime.rs`/`BENCH_driver.json` *relative to this number*,
//!   so a sampler-level regression cannot masquerade as an engine-level
//!   one or vice versa.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dwrs_core::swor::SworConfig;
use dwrs_core::Item;
use dwrs_sim::{swor_coordinator, swor_site, Runner};

const N: usize = 1_000_000;
const S: usize = 64;

fn workloads() -> Vec<(&'static str, Vec<Item>)> {
    vec![
        ("unit", dwrs_workloads::unit(N)),
        ("zipf", dwrs_workloads::zipf_ranked(N, 1.2, 7)),
    ]
}

fn observe_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("observe_only");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for (name, items) in workloads() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &items, |b, items| {
            b.iter(|| {
                let mut site = swor_site(&SworConfig::new(S, 1), 42, 0);
                let mut out = Vec::with_capacity(256);
                for &item in items {
                    // The trait path the engines drive (inherent observe
                    // plus the outbox push), fully qualified because
                    // `SworSite` also has an inherent `observe`.
                    dwrs_sim::SiteNode::observe(&mut site, item, &mut out);
                    // Discard messages without deallocating: the push is
                    // part of the per-item cost, the consumer is not.
                    if out.len() >= 192 {
                        out.clear();
                    }
                }
                black_box(out.len())
            });
        });
    }
    g.finish();
}

fn lockstep_k1(c: &mut Criterion) {
    let mut g = c.benchmark_group("lockstep_k1");
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(10);
    for (name, items) in workloads() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &items, |b, items| {
            b.iter(|| {
                let cfg = SworConfig::new(S, 1);
                let site = swor_site(&cfg, 42, 0);
                let coordinator = swor_coordinator(cfg, 42);
                let mut runner = Runner::new(coordinator, vec![site]);
                for &item in items {
                    runner.step(0, item);
                }
                black_box(runner.metrics.total())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, observe_only, lockstep_k1);
criterion_main!(benches);
