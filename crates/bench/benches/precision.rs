//! Criterion benchmarks for key generation: full-precision draws vs the
//! lazy bit-by-bit comparison of Proposition 7.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dwrs_core::keys::{key_above, key_for};
use dwrs_core::precision::lazy_key_above;
use dwrs_core::Rng;

fn key_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("key_generation");
    g.throughput(Throughput::Elements(1));
    g.bench_function("key_for_f64", |b| {
        let mut rng = Rng::new(1);
        b.iter(|| black_box(key_for(black_box(3.5), &mut rng)));
    });
    g.bench_function("lazy_key_above", |b| {
        let mut rng = Rng::new(2);
        b.iter(|| black_box(lazy_key_above(black_box(3.5), black_box(100.0), &mut rng)));
    });
    g.bench_function("conditional_key_above", |b| {
        let mut rng = Rng::new(3);
        b.iter(|| black_box(key_above(black_box(3.5), black_box(100.0), &mut rng)));
    });
    g.finish();
}

criterion_group!(benches, key_generation);
criterion_main!(benches);
