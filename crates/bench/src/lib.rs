//! # dwrs-bench
//!
//! Experiment harness regenerating every quantitative claim of the paper
//! (the per-experiment index lives in DESIGN.md §4; measured-vs-paper
//! numbers are recorded in EXPERIMENTS.md).
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p dwrs-bench --bin experiments -- all
//! ```
//!
//! or a subset, e.g. `-- e1 e13 table5`. `--quick` shrinks instance sizes
//! (used by the integration tests to smoke-run the whole harness).
//!
//! Criterion microbenchmarks of the hot paths live under `benches/`.

#![warn(missing_docs)]

pub mod exps;
pub mod scale;
pub mod table;

pub use scale::Scale;

/// All experiment ids, in run order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21",
];

/// Dispatches one experiment by id ("table5" aliases "e13").
pub fn run_experiment(id: &str, scale: Scale) -> bool {
    match id {
        "e1" => exps::swor_msgs::e1_w_sweep(scale),
        "e2" => exps::swor_msgs::e2_k_s_sweep(scale),
        "e3" => exps::swor_msgs::e3_vs_naive(scale),
        "e4" => exps::correctness::e4_inclusion(scale),
        "e5" => exps::swr_exp::e5_swr(scale),
        "e6" => exps::levels::e6_level_invariants(scale),
        "e7" => exps::epochs::e7_epoch_count(scale),
        "e8" => exps::precision_exp::e8_bits(scale),
        "e9" => exps::rhh::e9_recall(scale),
        "e10" => exps::rhh::e10_messages(scale),
        "e11" => exps::rhh::e11_lower_bound(scale),
        "e12" => exps::l1_exp::e12_accuracy(scale),
        "e13" | "table5" => exps::l1_exp::e13_table5(scale),
        "e14" => exps::l1_exp::e14_lower_bound(scale),
        "e15" => exps::levels::e15_ablation_no_levels(scale),
        "e16" => exps::levels::e16_ablation_r(scale),
        "e17" => exps::robust::e17_delay(scale),
        "e18" => exps::window::e18_sliding_window(scale),
        "e19" => exps::l1_exp::e19_piggyback(scale),
        "e20" => exps::levels::e20_capacity_factor(scale),
        "e21" => exps::robust::e21_partitioning(scale),
        _ => return false,
    }
    true
}
