//! Experiment sizing.

/// Instance sizes for the experiment harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Shrunk instances for smoke tests (seconds for the whole suite).
    Quick,
    /// The sizes recorded in EXPERIMENTS.md (minutes for the whole suite).
    Full,
}

impl Scale {
    /// Picks `q` under `Quick`, `f` under `Full`.
    pub fn pick<T>(self, q: T, f: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
