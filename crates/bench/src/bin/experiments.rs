//! Experiment driver: regenerates every table/claim of the paper.
//!
//! Usage:
//!
//! ```text
//! experiments [--quick] all
//! experiments [--quick] e1 e4 table5 ...
//! ```

use dwrs_bench::{run_experiment, Scale, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if ids.is_empty() {
        eprintln!("usage: experiments [--quick] all | <ids...>");
        eprintln!("known ids: {}", ALL_EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    let run_all = ids.contains(&"all");
    let selected: Vec<&str> = if run_all {
        ALL_EXPERIMENTS.to_vec()
    } else {
        ids
    };
    let started = std::time::Instant::now();
    for id in &selected {
        let t0 = std::time::Instant::now();
        if !run_experiment(id, scale) {
            eprintln!("unknown experiment id: {id}");
            std::process::exit(2);
        }
        println!("[{} done in {:.1?}]", id, t0.elapsed());
    }
    println!(
        "\nall {} experiment(s) finished in {:.1?}",
        selected.len(),
        started.elapsed()
    );
}
