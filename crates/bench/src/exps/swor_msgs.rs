//! E1–E3: message complexity of weighted SWOR (Theorem 3) and the naive
//! baseline gap.

use dwrs_core::item::total_weight;
use dwrs_core::swor::SworConfig;
use dwrs_sim::{assign_sites, build_naive, Partition};
use dwrs_workloads::{uniform_weights, zipf_ranked};

use crate::exps::util::{log_log_slope, run_swor, swor_bound};
use crate::table::{f, n, Table};
use crate::Scale;

/// E1: messages vs. total weight `W` at fixed `k`, `s`.
///
/// Theorem 3 predicts `O(k·log(W/s)/log(1+k/s))`: messages must grow
/// logarithmically in `W`, i.e. linearly in `log W` — the measured/bound
/// ratio must stay flat across a 256× growth in stream length.
pub fn e1_w_sweep(scale: Scale) {
    let (k, s) = (16usize, 16usize);
    let max_pow = scale.pick(14, 20);
    let mut table = Table::new(
        "E1 — weighted SWOR messages vs W (k=16, s=16); Thm 3: k·ln(W/s)/ln(1+k/s)",
        &[
            "n",
            "W",
            "early",
            "regular",
            "bcast_evts",
            "total",
            "bytes",
            "bound",
            "ratio",
        ],
    );
    let mut ws = Vec::new();
    let mut totals = Vec::new();
    let mut pow = scale.pick(10, 12);
    while pow <= max_pow {
        let n_items = 1usize << pow;
        let items = uniform_weights(n_items, 1.0, 2.0, 11 + pow as u64);
        let w = total_weight(&items);
        let runner = run_swor(SworConfig::new(s, k), &items, Partition::RoundRobin, 77);
        let m = &runner.metrics;
        let bound = swor_bound(k, s, w);
        table.row(&[
            n(n_items as u64),
            f(w),
            n(m.kind("early")),
            n(m.kind("regular")),
            n(m.broadcast_events),
            n(m.total()),
            n(m.total_bytes()),
            f(bound),
            f(m.total() as f64 / bound),
        ]);
        ws.push(w.ln());
        totals.push(m.total() as f64);
        pow += 2;
    }
    table.print();
    // Messages should be ~linear in ln W: slope of messages vs ln(W) in
    // log-log should be ~1 (i.e. messages ∝ (ln W)^1).
    let slope = log_log_slope(&ws, &totals);
    println!(
        "fit: messages ∝ (ln W)^{:.2}   [Thm 3 predicts exponent ≈ 1]",
        slope
    );
}

/// E2: messages vs. `k` (fixed s) and vs. `s` (fixed k).
pub fn e2_k_s_sweep(scale: Scale) {
    let n_items = scale.pick(1 << 13, 1 << 17);
    let items = uniform_weights(n_items, 1.0, 2.0, 5);
    let w = total_weight(&items);

    let mut t1 = Table::new(
        "E2a — weighted SWOR messages vs k (s=16)",
        &["k", "total", "bound", "ratio", "per_site"],
    );
    let s = 16usize;
    let ks: Vec<usize> = scale.pick(vec![4, 16, 64], vec![4, 16, 64, 256, 1024]);
    let mut kxs = Vec::new();
    let mut kys = Vec::new();
    let mut kbs = Vec::new();
    for &k in &ks {
        let runner = run_swor(SworConfig::new(s, k), &items, Partition::RoundRobin, 31);
        let total = runner.metrics.total();
        let bound = swor_bound(k, s, w);
        t1.row(&[
            n(k as u64),
            n(total),
            f(bound),
            f(total as f64 / bound),
            f(total as f64 / k as f64),
        ]);
        kxs.push(k as f64);
        kys.push(total as f64);
        kbs.push(bound);
    }
    t1.print();
    println!(
        "fit: messages ∝ k^{:.2} vs Thm 3 bound's own k^{:.2} over this range (k/log(1+k/s) is sublinear until k ≫ s)",
        log_log_slope(&kxs, &kys),
        log_log_slope(&kxs, &kbs)
    );

    let mut t2 = Table::new(
        "E2b — weighted SWOR messages vs s (k=64)",
        &["s", "total", "bound", "ratio"],
    );
    let k = 64usize;
    for &s in scale.pick(&[4usize, 16, 64][..], &[4usize, 16, 64, 256][..]) {
        let runner = run_swor(SworConfig::new(s, k), &items, Partition::RoundRobin, 32);
        let total = runner.metrics.total();
        let bound = swor_bound(k, s, w);
        t2.row(&[n(s as u64), n(total), f(bound), f(total as f64 / bound)]);
    }
    t2.print();
}

/// E3: the paper's protocol vs. the naive per-site-sampler baseline
/// (Section 1.2's `O(ks·log W)` strawman): the gap must grow with `s`.
pub fn e3_vs_naive(scale: Scale) {
    let n_items = scale.pick(1 << 13, 1 << 16);
    let k = 16usize;
    let mut table = Table::new(
        "E3 — optimal vs naive baseline (k=16), uniform & Zipf(1.5) streams",
        &["stream", "s", "optimal", "naive", "naive/optimal"],
    );
    for (name, items) in [
        ("uniform", uniform_weights(n_items, 1.0, 2.0, 7)),
        ("zipf1.5", zipf_ranked(n_items, 1.5, 8)),
    ] {
        for &s in &[16usize, 64] {
            let opt = run_swor(SworConfig::new(s, k), &items, Partition::RoundRobin, 41);
            let mut naive = build_naive(s, k, 42);
            let sites = assign_sites(Partition::RoundRobin, k, items.len(), 43);
            naive.run(sites.into_iter().zip(items.iter().copied()));
            let (a, b) = (opt.metrics.total(), naive.metrics.total());
            table.row(&[name.into(), n(s as u64), n(a), n(b), f(b as f64 / a as f64)]);
        }
    }
    table.print();
    println!(
        "[paper: naive pays a Θ(s)-ish factor; the gap grows with s on benign streams. On \
         extreme Zipf the level-set premium (bounded, see E15a) makes naive competitive at \
         small k·s — the separation is about worst-case guarantees, which naive lacks]"
    );
}
