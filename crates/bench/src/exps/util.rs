//! Shared experiment helpers.

use dwrs_core::swor::{SworConfig, SworCoordinator, SworSite};
use dwrs_core::Item;
use dwrs_sim::{assign_sites, build_swor, Partition, Runner};

/// Runs the weighted SWOR protocol over `items` partitioned by `partition`;
/// returns the finished runner (metrics + coordinator).
pub fn run_swor(
    cfg: SworConfig,
    items: &[Item],
    partition: Partition,
    seed: u64,
) -> Runner<SworSite, SworCoordinator> {
    let k = cfg.num_sites;
    let mut runner = build_swor(cfg, seed);
    let sites = assign_sites(partition, k, items.len(), seed ^ 0x9E37);
    runner.run(sites.into_iter().zip(items.iter().copied()));
    runner
}

/// The paper's Theorem 3 bound `k·ln(W/s)/ln(1+k/s)` (natural logs; the
/// constant in front is what experiments estimate).
pub fn swor_bound(k: usize, s: usize, total_weight: f64) -> f64 {
    let k = k as f64;
    let s = s as f64;
    let ratio = (total_weight / s).max(std::f64::consts::E);
    k * ratio.ln() / (1.0 + k / s).ln().max(f64::MIN_POSITIVE)
}

/// Corollary 1's bound `(k + s·ln s)·ln(W)/ln(2+k/s)`.
pub fn swr_bound(k: usize, s: usize, total_weight: f64) -> f64 {
    let kf = k as f64;
    let sf = s as f64;
    (kf + sf * sf.ln().max(1.0)) * total_weight.max(std::f64::consts::E).ln() / (2.0 + kf / sf).ln()
}

/// Theorem 4's bound `(k/ln k + ln(1/(εδ))/ε)·ln(εW)`.
pub fn rhh_bound(k: usize, eps: f64, delta: f64, total_weight: f64) -> f64 {
    let kf = k as f64;
    let log_ew = (eps * total_weight).max(std::f64::consts::E).ln();
    (kf / kf.ln().max(1.0) + (1.0 / (eps * delta)).ln() / eps) * log_ew
}

/// Theorem 6's bound `(k/ln k + ln(1/δ)/ε²)·ln(εW)`.
pub fn l1_bound(k: usize, eps: f64, delta: f64, total_weight: f64) -> f64 {
    let kf = k as f64;
    let log_ew = (eps * total_weight).max(std::f64::consts::E).ln();
    (kf / kf.ln().max(1.0) + (1.0 / delta).ln() / (eps * eps)) * log_ew
}

/// Least-squares slope of `ln y` against `ln x` — the empirical scaling
/// exponent used to compare growth rates against the paper's formulas.
pub fn log_log_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2);
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let mx = lx.iter().sum::<f64>() / lx.len() as f64;
    let my = ly.iter().sum::<f64>() / ly.len() as f64;
    let cov: f64 = lx.iter().zip(&ly).map(|(a, b)| (a - mx) * (b - my)).sum();
    let var: f64 = lx.iter().map(|a| (a - mx) * (a - mx)).sum();
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_recovers_power_law() {
        let xs = [1.0, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
        let b = log_log_slope(&xs, &ys);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bounds_positive_and_monotone_in_w() {
        assert!(swor_bound(16, 16, 1e6) > swor_bound(16, 16, 1e3));
        assert!(swr_bound(16, 16, 1e6) > 0.0);
        assert!(rhh_bound(16, 0.1, 0.1, 1e6) > 0.0);
        assert!(l1_bound(16, 0.1, 0.1, 1e6) > 0.0);
    }

    #[test]
    fn run_swor_smoke() {
        let items = dwrs_workloads::uniform_weights(2000, 1.0, 2.0, 3);
        let r = run_swor(SworConfig::new(8, 4), &items, Partition::RoundRobin, 1);
        assert_eq!(r.coordinator.sample().len(), 8);
    }
}
