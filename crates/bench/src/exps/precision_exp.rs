//! E8: Proposition 7 — lazy exponential generation needs O(1) expected bits
//! per threshold comparison.

use dwrs_core::precision::mean_bits;
use dwrs_core::Rng;

use crate::table::{f, Table};
use crate::Scale;

/// E8: mean bits per comparison across weight/threshold regimes.
pub fn e8_bits(scale: Scale) {
    let trials = scale.pick(20_000u32, 200_000u32);
    let mut rng = Rng::new(8);
    let mut table = Table::new(
        "E8 — Prop. 7: expected random bits per lazy threshold comparison",
        &["weight", "threshold", "P(send)", "mean_bits"],
    );
    let cases = [
        (1.0, 1.0),
        (1.0, 16.0),
        (1.0, 1e6),
        (1.0, 1e12),
        (1e6, 1.0),
        (37.5, 1000.0),
    ];
    let mut worst: f64 = 0.0;
    for &(w, theta) in &cases {
        let p = dwrs_core::keys::p_key_above(w, theta);
        let bits = mean_bits(w, theta, trials, &mut rng);
        worst = worst.max(bits);
        table.row(&[f(w), f(theta), f(p), f(bits)]);
    }
    table.print();
    println!(
        "max mean bits = {worst:.3}  [Prop. 7: O(1) in expectation — {}]",
        if worst <= 4.0 { "PASS" } else { "FAIL" }
    );
}
