//! E4: distributional correctness of the distributed weighted SWOR against
//! the exact oracle, at the end of the stream *and* mid-stream (Definition 3
//! requires validity at every time step).

use dwrs_core::exact::inclusion_probabilities;
use dwrs_core::swor::SworConfig;
use dwrs_core::Item;
use dwrs_sim::build_swor;
use dwrs_stats::tv_distance;

use crate::table::{f, Table};
use crate::Scale;

/// E4: empirical inclusion frequencies vs. exact probabilities.
pub fn e4_inclusion(scale: Scale) {
    let weights = [3.0, 1.0, 1.0, 5.0, 2.0, 4.0, 1.0, 1.0, 2.0, 10.0];
    let s = 3usize;
    let k = 3usize;
    let probe_t = 6usize; // mid-stream prefix length to also validate
    let trials = scale.pick(4_000u64, 40_000u64);

    let exact_final = inclusion_probabilities(&weights, s);
    let exact_probe = inclusion_probabilities(&weights[..probe_t], s);

    let mut count_final = vec![0u64; weights.len()];
    let mut count_probe = vec![0u64; probe_t];
    for trial in 0..trials {
        let mut runner = build_swor(SworConfig::new(s, k), 1_000_000 + trial);
        for (i, &w) in weights.iter().enumerate() {
            runner.step(i % k, Item::new(i as u64, w));
            if i + 1 == probe_t {
                for keyed in runner.coordinator.sample() {
                    count_probe[keyed.item.id as usize] += 1;
                }
            }
        }
        for keyed in runner.coordinator.sample() {
            count_final[keyed.item.id as usize] += 1;
        }
    }

    let mut table = Table::new(
        "E4 — distributed weighted SWOR inclusion probabilities vs exact oracle",
        &["item", "weight", "exact", "empirical", "z"],
    );
    let mut max_z: f64 = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        let p = exact_final[i];
        let emp = count_final[i] as f64 / trials as f64;
        let se = (p * (1.0 - p) / trials as f64).sqrt().max(1e-12);
        let z = (emp - p) / se;
        max_z = max_z.max(z.abs());
        table.row(&[i.to_string(), f(w), f(p), f(emp), f(z)]);
    }
    table.print();

    let emp_final: Vec<f64> = count_final
        .iter()
        .map(|&c| c as f64 / (trials as f64 * s as f64))
        .collect();
    let exact_norm: Vec<f64> = exact_final.iter().map(|p| p / s as f64).collect();
    println!(
        "final-time: max |z| = {max_z:.2}  TV(emp, exact) = {:.4}  [accept: max|z| < 4.5]",
        tv_distance(&emp_final, &exact_norm)
    );

    let mut max_z_probe: f64 = 0.0;
    for i in 0..probe_t {
        let p = exact_probe[i];
        let emp = count_probe[i] as f64 / trials as f64;
        let se = (p * (1.0 - p) / trials as f64).sqrt().max(1e-12);
        max_z_probe = max_z_probe.max(((emp - p) / se).abs());
    }
    println!("mid-stream (t={probe_t}): max |z| = {max_z_probe:.2}  [continuous validity, Def. 3]");
    let verdict = if max_z < 4.5 && max_z_probe < 4.5 {
        "PASS"
    } else {
        "FAIL"
    };
    println!("E4 verdict: {verdict}");
}
