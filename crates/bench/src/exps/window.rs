//! E18: the sliding-window extension (the paper's open problem) —
//! correctness against windowed resampling and the retained-set size.

use dwrs_apps::SlidingWindowSwor;
use dwrs_core::centralized::{ExpClockSwor, StreamSampler};
use dwrs_core::Item;
use dwrs_workloads::zipf_ranked;

use crate::table::{f, n, Table};
use crate::Scale;

/// E18: window sampler vs fresh resampling of the window.
pub fn e18_sliding_window(scale: Scale) {
    let window = 64u64;
    let s = 4usize;
    let n_items = 256u64;
    let trials = scale.pick(3_000u64, 20_000u64);
    // Track inclusion frequency of a designated heavy in-window item.
    let heavy_pos = n_items - 10;
    let weight = |i: u64| if i == heavy_pos { 12.0 } else { 1.0 };
    let (mut hits_win, mut hits_ref) = (0u64, 0u64);
    for t in 0..trials {
        let mut sw = SlidingWindowSwor::new(s, window, 3_000 + t);
        for i in 0..n_items {
            sw.observe(Item::new(i, weight(i)));
        }
        if sw.sample().iter().any(|k| k.item.id == heavy_pos) {
            hits_win += 1;
        }
        let mut reference = ExpClockSwor::new(s, 9_000 + t);
        for i in (n_items - window)..n_items {
            reference.observe(Item::new(i, weight(i)));
        }
        if reference.sample().iter().any(|it| it.id == heavy_pos) {
            hits_ref += 1;
        }
    }
    let (p_win, p_ref) = (
        hits_win as f64 / trials as f64,
        hits_ref as f64 / trials as f64,
    );
    let se = (p_ref * (1.0 - p_ref) / trials as f64).sqrt() * std::f64::consts::SQRT_2;
    let z = (p_win - p_ref) / se;
    let mut table = Table::new(
        "E18 — sliding-window weighted SWOR vs windowed resampling",
        &["window", "s", "P_incl(window)", "P_incl(resample)", "z"],
    );
    table.row(&[n(window), n(s as u64), f(p_win), f(p_ref), f(z)]);
    table.print();

    // Retained-set size: expected O(s·log(window/s)).
    let mut sw = SlidingWindowSwor::new(8, 4096, 5);
    for it in zipf_ranked(scale.pick(20_000, 100_000), 1.1, 6) {
        sw.observe(it);
    }
    let expect = 8.0 * (4096f64 / 8.0).ln();
    println!(
        "retained set: {} entries (theory ~ s·ln(window/s) = {:.0}) — sublinear in window",
        sw.retained_len(),
        expect
    );
    println!(
        "E18 verdict: {}",
        if z.abs() < 4.5 { "PASS" } else { "FAIL" }
    );
}
