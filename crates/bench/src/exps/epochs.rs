//! E7: epoch count vs Proposition 5's bound `3·(log(W/s)/log r + 1)`.

use dwrs_core::item::total_weight;
use dwrs_core::swor::SworConfig;
use dwrs_sim::Partition;
use dwrs_workloads::{uniform_weights, zipf_ranked};

use crate::exps::util::run_swor;
use crate::table::{f, n, Table};
use crate::Scale;

/// E7: measured epoch advances against Proposition 5.
pub fn e7_epoch_count(scale: Scale) {
    let (k, s) = (16usize, 16usize);
    let r = SworConfig::new(s, k).r();
    let mut table = Table::new(
        "E7 — epochs vs Prop. 5 bound 3(ln(W/s)/ln r + 1) (k=16, s=16)",
        &["stream", "n", "W", "epochs", "bound", "ratio"],
    );
    let mut pow = scale.pick(10, 12);
    let max_pow = scale.pick(13, 19);
    while pow <= max_pow {
        let n_items = 1usize << pow;
        for (name, items) in [
            (
                "uniform",
                uniform_weights(n_items, 1.0, 2.0, 80 + pow as u64),
            ),
            ("zipf1.2", zipf_ranked(n_items, 1.2, 90 + pow as u64)),
        ] {
            let w = total_weight(&items);
            let runner = run_swor(SworConfig::new(s, k), &items, Partition::RoundRobin, 81);
            let epochs = runner.coordinator.stats.epoch_broadcasts;
            let bound = 3.0 * ((w / s as f64).ln() / r.ln() + 1.0);
            table.row(&[
                name.into(),
                n(n_items as u64),
                f(w),
                n(epochs),
                f(bound),
                f(epochs as f64 / bound),
            ]);
        }
        pow += 3;
    }
    table.print();
    println!("[Prop. 5: expected epochs ≤ 3(log(W/s)/log r + 1); ratios must stay ≤ 1]");
}
