//! E12–E14: L1 tracking — accuracy of the duplication estimator (Theorem 6),
//! the Section 5 comparison table, and the Theorem 7 lower-bound instance.

use dwrs_apps::l1::{
    run_tracker, FolkloreTracker, HyzTracker, L1Config, L1DupTracker, PiggybackL1Tracker,
};
use dwrs_core::Item;
use dwrs_workloads::l1_unit_epochs;

use crate::exps::util::l1_bound;
use crate::table::{f, n, Table};
use crate::Scale;

fn unit_stream(n: u64, k: usize) -> Vec<(usize, Item)> {
    (0..n)
        .map(|i| ((i % k as u64) as usize, Item::unit(i)))
        .collect()
}

/// Experiment-scale constant for the duplication tracker: the paper's proof
/// constant (`10·ln(1/δ)/ε²`) is kept for the accuracy experiment E12; the
/// table experiment uses `2/ε²` to keep instances tractable while leaving
/// every scaling law intact (documented in EXPERIMENTS.md).
fn table_config(eps: f64, k: usize) -> L1Config {
    let mut cfg = L1Config::new(eps, 0.25, k);
    let s = ((2.0 / (eps * eps)).ceil() as usize).max(8);
    cfg.sample_size_override = Some(s);
    cfg.dup_override = Some(((s as f64 / (2.0 * eps)).ceil()) as u64);
    cfg
}

/// E12: accuracy — `W̃ = (1±ε)W` at probe times with probability ≥ 1-δ
/// (Theorem 6), using the paper's own constants.
pub fn e12_accuracy(scale: Scale) {
    let (eps, delta, k) = (0.15f64, 0.2f64, 8usize);
    let trials = scale.pick(6u64, 30u64);
    let n_items = scale.pick(250u64, 1_200u64);
    let cfg = L1Config::new(eps, delta, k);
    let mut table = Table::new(
        "E12 — duplication L1 tracker accuracy (Thm 6; paper constants)",
        &[
            "eps",
            "delta",
            "s",
            "ell",
            "trials",
            "max_err_med",
            "success_rate",
        ],
    );
    let mut errs = Vec::new();
    let mut successes = 0u64;
    for t in 0..trials {
        let mut tracker = L1DupTracker::new(cfg.clone(), 500 + t);
        let stream = unit_stream(n_items, k);
        let (err, _) = run_tracker(&mut tracker, &stream, (n_items / 25).max(1) as usize);
        if err <= eps {
            successes += 1;
        }
        errs.push(err);
    }
    errs.sort_by(f64::total_cmp);
    table.row(&[
        f(eps),
        f(delta),
        n(cfg.sample_size() as u64),
        n(cfg.duplication()),
        n(trials),
        f(errs[errs.len() / 2]),
        f(successes as f64 / trials as f64),
    ]);
    table.print();
    println!(
        "[Thm 6: per-probe success prob ≥ 1-δ; max-over-probes success here is a stricter event]"
    );
}

/// E13: the paper's Section 5 table with measured message counts — the only
/// literal table in the paper.
pub fn e13_table5(scale: Scale) {
    // (a) sweep k at fixed eps: ours must grow slowest in k.
    let eps = 0.1f64;
    let n_items: u64 = scale.pick(1 << 12, 1 << 17);
    let ks: Vec<usize> = scale.pick(vec![4, 16], vec![16, 64, 256, 1024]);
    let mut ta = Table::new(
        &format!(
            "E13a — Section 5 table, k sweep (eps={eps}, unit weights, n={n_items}): messages"
        ),
        &[
            "k",
            "folklore k·lnW/eps",
            "HYZ12 (k+rt(k)/eps)lnW",
            "this work k·lnW/ln k + lnW/eps^2",
            "ours/folklore",
        ],
    );
    for &k in &ks {
        let stream = unit_stream(n_items, k);
        let mut folk = FolkloreTracker::new(eps, k);
        let (_, m_folk) = run_tracker(&mut folk, &stream, usize::MAX);
        let mut hyz = HyzTracker::new(eps, k, 31);
        let (_, m_hyz) = run_tracker(&mut hyz, &stream, usize::MAX);
        let mut ours = L1DupTracker::new(table_config(eps, k), 32);
        let (_, m_ours) = run_tracker(&mut ours, &stream, usize::MAX);
        ta.row(&[
            n(k as u64),
            n(m_folk),
            n(m_hyz),
            n(m_ours),
            f(m_ours as f64 / m_folk as f64),
        ]);
    }
    ta.print();

    // (b) sweep eps at fixed k: folklore ∝ 1/eps, ours ∝ 1/eps², HYZ between.
    let k = scale.pick(16usize, 256usize);
    let epss: Vec<f64> = scale.pick(vec![0.3, 0.2], vec![0.3, 0.2, 0.1, 0.05]);
    let mut tb = Table::new(
        &format!("E13b — Section 5 table, eps sweep (k={k}, unit weights, n={n_items}): messages"),
        &[
            "eps",
            "folklore",
            "HYZ12",
            "this work",
            "hyz/folklore",
            "ours/folklore",
        ],
    );
    for &e in &epss {
        let stream = unit_stream(n_items, k);
        let mut folk = FolkloreTracker::new(e, k);
        let (_, m_folk) = run_tracker(&mut folk, &stream, usize::MAX);
        let mut hyz = HyzTracker::new(e, k, 41);
        let (_, m_hyz) = run_tracker(&mut hyz, &stream, usize::MAX);
        let mut ours = L1DupTracker::new(table_config(e, k), 42);
        let (_, m_ours) = run_tracker(&mut ours, &stream, usize::MAX);
        tb.row(&[
            f(e),
            n(m_folk),
            n(m_hyz),
            n(m_ours),
            f(m_hyz as f64 / m_folk as f64),
            f(m_ours as f64 / m_folk as f64),
        ]);
    }
    tb.print();
    println!("[paper table: ours O(k·log(eW)/log k + log(eW)/eps²) beats prior work once k ≳ C/eps²; the k-sweep shows ours flattest in k, the eps-sweep shows folklore ∝ 1/eps vs ours ∝ 1/eps²]");
}

/// E19: the piggyback extension — L1 estimation at zero extra messages on
/// top of the sampling deployment, vs the paper's duplication tracker at a
/// matched sample size.
pub fn e19_piggyback(scale: Scale) {
    let k = 16usize;
    let n_items = scale.pick(1u64 << 12, 1u64 << 16);
    let mut table = Table::new(
        "E19 — piggyback L1 (extension): error & messages vs duplication tracker (k=16)",
        &[
            "s",
            "piggy_err",
            "piggy_msgs",
            "dup_err",
            "dup_msgs",
            "dup/piggy msgs",
        ],
    );
    for &s in scale.pick(&[64usize][..], &[64usize, 256, 1024][..]) {
        let stream: Vec<(usize, Item)> = (0..n_items)
            .map(|i| ((i % k as u64) as usize, Item::new(i, 1.0 + (i % 9) as f64)))
            .collect();
        let mut piggy = PiggybackL1Tracker::new(s, k, 71);
        let (e_p, m_p) = run_tracker(&mut piggy, &stream, (n_items / 50).max(1) as usize);
        let mut cfg = L1Config::new(0.49, 0.25, k);
        cfg.sample_size_override = Some(s);
        cfg.dup_override = Some((s as f64 / 0.2).ceil() as u64);
        let mut dup = L1DupTracker::new(cfg, 72);
        let (e_d, m_d) = run_tracker(&mut dup, &stream, (n_items / 50).max(1) as usize);
        table.row(&[
            n(s as u64),
            f(e_p),
            n(m_p),
            f(e_d),
            n(m_d),
            f(m_d as f64 / m_p as f64),
        ]);
    }
    table.print();
    println!("[extension beyond the paper: the HT rank-conditioning estimator over the live sample gives ~1/√s error at the sampling protocol's own message cost]");
}

/// E14: the Theorem 7 lower-bound instance (`k^i` unit epochs).
pub fn e14_lower_bound(scale: Scale) {
    let k = scale.pick(8usize, 32usize);
    let eta = scale.pick(4u32, 4u32);
    let cap = scale.pick(1usize << 12, 1usize << 20);
    let inst = l1_unit_epochs(k, eta, cap);
    let w: f64 = inst.len() as f64;
    let eps = 0.2;
    let mut table = Table::new(
        "E14 — Thm 7 hard instance (k^i unit epochs): messages vs Ω(k·lnW/ln k)",
        &["tracker", "k", "n", "msgs", "lower_bound", "msgs/bound"],
    );
    let lb = k as f64 * w.ln() / (k as f64).ln();
    let mut ours = L1DupTracker::new(table_config(eps, k), 51);
    let (_, m_ours) = run_tracker(&mut ours, &inst, usize::MAX);
    let mut folk = FolkloreTracker::new(eps, k);
    let (_, m_folk) = run_tracker(&mut folk, &inst, usize::MAX);
    for (name, m) in [("this work", m_ours), ("folklore", m_folk)] {
        table.row(&[
            name.into(),
            n(k as u64),
            n(inst.len() as u64),
            n(m),
            f(lb),
            f(m as f64 / lb),
        ]);
    }
    table.print();
    let _ = l1_bound(k, eps, 0.25, w);
    println!("[Thm 7: every correct tracker pays Ω(k·logW/log k) here; our measured/bound ratio is an O(1) constant — the bound is tight]");
}
