//! Experiment implementations (see DESIGN.md §4 for the index).

pub mod correctness;
pub mod epochs;
pub mod l1_exp;
pub mod levels;
pub mod precision_exp;
pub mod rhh;
pub mod robust;
pub mod swor_msgs;
pub mod swr_exp;
pub mod util;
pub mod window;
