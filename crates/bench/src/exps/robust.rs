//! E17: robustness to broadcast latency — stale thresholds and saturation
//! bits may only inflate message counts, never break correctness.

use dwrs_core::item::total_weight;
use dwrs_core::swor::SworConfig;
use dwrs_sim::{assign_sites, build_swor, Partition};
use dwrs_workloads::uniform_weights;

use crate::table::{f, n, Table};
use crate::Scale;

/// E21: robustness to adversarial partitioning — the paper's model lets an
/// adversary choose which site sees each item; message complexity must not
/// depend on the split beyond constants.
pub fn e21_partitioning(scale: Scale) {
    let n_items = scale.pick(1 << 12, 1 << 16);
    let (k, s) = (16usize, 16usize);
    let mut table = Table::new(
        "E21 — partitioning robustness (k=16, s=16): total messages",
        &["stream", "roundrobin", "random", "single_site", "skewed_90"],
    );
    for (name, items) in [
        (
            "uniform",
            dwrs_workloads::uniform_weights(n_items, 1.0, 2.0, 95),
        ),
        ("zipf1.3", dwrs_workloads::zipf_ranked(n_items, 1.3, 96)),
    ] {
        let mut cells = vec![name.to_string()];
        for partition in [
            Partition::RoundRobin,
            Partition::Random,
            Partition::SingleSite(0),
            Partition::Skewed { hot: 0.9 },
        ] {
            let mut runner = build_swor(SworConfig::new(s, k), 97);
            let sites = assign_sites(partition, k, items.len(), 98);
            runner.run(sites.into_iter().zip(items.iter().copied()));
            cells.push(runner.metrics.total().to_string());
        }
        table.row(&cells);
    }
    table.print();
    println!("[the adversary controls the split (Section 2.1); totals shift only by constants]");
}

/// E17: message inflation under delayed broadcasts.
pub fn e17_delay(scale: Scale) {
    let n_items = scale.pick(1 << 12, 1 << 16);
    let (k, s) = (16usize, 16usize);
    let items = uniform_weights(n_items, 1.0, 2.0, 90);
    let w = total_weight(&items);
    let mut table = Table::new(
        "E17 — broadcast latency robustness (k=16, s=16, uniform)",
        &[
            "latency",
            "early",
            "regular",
            "total",
            "inflation",
            "sample_ok",
        ],
    );
    let mut base_total = 0u64;
    for &latency in &[0u64, 8, 64, 512, 4096] {
        let cfg = SworConfig::new(s, k);
        let mut runner = if latency == 0 {
            build_swor(cfg, 91)
        } else {
            build_swor(cfg, 91).with_latency(latency)
        };
        let sites = assign_sites(Partition::RoundRobin, k, items.len(), 92);
        runner.run(sites.into_iter().zip(items.iter().copied()));
        let total = runner.metrics.total();
        if latency == 0 {
            base_total = total;
        }
        let sample = runner.coordinator.sample();
        table.row(&[
            n(latency),
            n(runner.metrics.kind("early")),
            n(runner.metrics.kind("regular")),
            n(total),
            f(total as f64 / base_total as f64),
            (sample.len() == s).to_string(),
        ]);
    }
    table.print();
    let _ = w;
    println!("[correctness is latency-independent (the sample is always the top-s of all generated keys); only message counts inflate]");
}
