//! E6 / E15 / E16: the level-set mechanism — Lemma 1's invariant, the
//! ablation with level sets disabled, and the epoch-base sweep.

use dwrs_core::item::total_weight;
use dwrs_core::swor::SworConfig;
use dwrs_sim::Partition;
use dwrs_workloads::{exploding, few_heavy, uniform_weights, Placement};

use crate::exps::util::run_swor;
use crate::table::{f, n, Table};
use crate::Scale;

/// E6: Lemma 1 — every released item is at most `1/(4s)` of released
/// weight; level-set overhead accounting.
pub fn e6_level_invariants(scale: Scale) {
    let n_items = scale.pick(1 << 12, 1 << 15);
    let (k, s) = (8usize, 8usize);
    let mut table = Table::new(
        "E6 — Lemma 1: max released fraction vs bound 1/(4s) (k=8, s=8)",
        &["stream", "max_frac", "bound", "ok", "early", "saturations"],
    );
    let streams = [
        ("uniform", uniform_weights(n_items, 1.0, 2.0, 61)),
        (
            "few_heavy@start",
            few_heavy(
                n_items,
                s / 2,
                1.0 - 1.0 / (100.0 * s as f64),
                Placement::Start,
                62,
            ),
        ),
        (
            "few_heavy@shuffled",
            few_heavy(
                n_items,
                s / 2,
                1.0 - 1.0 / (100.0 * s as f64),
                Placement::Shuffled,
                63,
            ),
        ),
        ("exploding eps=.05", exploding(0.05, 1e12, n_items)),
    ];
    let bound = 1.0 / (4.0 * s as f64);
    for (name, items) in streams {
        let runner = run_swor(SworConfig::new(s, k), &items, Partition::RoundRobin, 64);
        let st = &runner.coordinator.stats;
        table.row(&[
            name.into(),
            f(st.max_release_fraction),
            f(bound),
            (st.max_release_fraction <= bound + 1e-12).to_string(),
            n(runner.metrics.kind("early")),
            n(st.saturations),
        ]);
    }
    table.print();
}

/// E15: ablation — level sets ON vs OFF, along two axes.
///
/// (a) **Message premium**: withholding costs up to `4rs` early messages
///     per level — a bounded constant-factor insurance premium on
///     adversarial streams; the sampling output is correct either way.
/// (b) **Why the paper needs them** (Section 1.2): with heavy hitters
///     withheld, the s-th largest *released* key concentrates around
///     `W_released/s`, so `u·s + withheld_weight` tracks the true L1. With
///     level sets off, a handful of giants poison the order statistic and
///     `u·s` is off by orders of magnitude — the estimator behind Theorem 6
///     collapses.
pub fn e15_ablation_no_levels(scale: Scale) {
    let (k, s) = (8usize, 64usize);
    let mut table = Table::new(
        "E15a — level sets ON vs OFF: message premium (k=8, s=64)",
        &["stream", "n", "on_total", "off_total", "on/off"],
    );
    let w_target = scale.pick(1e15, 1e30);
    let streams = [
        ("exploding eps=.01", exploding(0.01, w_target, 1 << 20)),
        (
            "uniform",
            dwrs_workloads::uniform_weights(scale.pick(1 << 12, 1 << 16), 1.0, 2.0, 3),
        ),
        (
            "few_heavy@start",
            few_heavy(
                scale.pick(1 << 12, 1 << 15),
                s / 2,
                0.9999,
                Placement::Start,
                65,
            ),
        ),
    ];
    for (name, items) in &streams {
        let on = run_swor(SworConfig::new(s, k), items, Partition::RoundRobin, 66);
        let off = run_swor(
            SworConfig::new(s, k).with_level_sets(false),
            items,
            Partition::RoundRobin,
            66,
        );
        let (a, b) = (on.metrics.total(), off.metrics.total());
        table.row(&[
            (*name).into(),
            n(items.len() as u64),
            n(a),
            n(b),
            f(a as f64 / b as f64),
        ]);
    }
    table.print();
    println!("[withholding is worst-case insurance: a bounded constant-factor premium (≤ ~4r per level) on any stream]");

    // (b) L1-estimability of the s-th key statistic.
    let mut tb = Table::new(
        "E15b — why withholding matters: L1 estimate from the s-th key (k=8, s=64)",
        &[
            "stream",
            "W",
            "est ON (u·s + withheld)",
            "est OFF (u·s)",
            "on_rel_err",
            "off_rel_err",
        ],
    );
    let heavy_streams = [
        (
            "few_heavy(99.99%)@shuffled",
            few_heavy(
                scale.pick(1 << 12, 1 << 15),
                s / 2,
                0.9999,
                Placement::Shuffled,
                67,
            ),
        ),
        (
            "few_heavy(99%)@start",
            few_heavy(
                scale.pick(1 << 12, 1 << 15),
                s / 2,
                0.99,
                Placement::Start,
                68,
            ),
        ),
    ];
    for (name, items) in &heavy_streams {
        let w: f64 = items.iter().map(|i| i.weight).sum();
        let on = run_swor(SworConfig::new(s, k), items, Partition::RoundRobin, 69);
        let off = run_swor(
            SworConfig::new(s, k).with_level_sets(false),
            items,
            Partition::RoundRobin,
            69,
        );
        let est_on = on.coordinator.u() * s as f64 + on.coordinator.withheld_weight();
        let est_off = off.coordinator.u() * s as f64;
        tb.row(&[
            (*name).into(),
            f(w),
            f(est_on),
            f(est_off),
            f((est_on - w).abs() / w),
            f((est_off - w).abs() / w),
        ]);
    }
    tb.print();
    println!("[Section 1.2: heavy items must be withheld for the key order statistic to estimate L1 — the Theorem 6 tracker is built on exactly this]");
}

/// E20: level-capacity factor sweep. The paper fills a level with `4rs`
/// items; capacity `c·rs` bounds every released item by a `1/(c·s)` weight
/// fraction — smaller `c` saves early messages but weakens the Lemma 1
/// margin the concentration arguments lean on.
pub fn e20_capacity_factor(scale: Scale) {
    let n_items = scale.pick(1 << 12, 1 << 16);
    let (k, s) = (8usize, 16usize);
    let items = few_heavy(n_items, s / 2, 0.999, Placement::Shuffled, 73);
    let mut table = Table::new(
        "E20 — level capacity factor sweep (k=8, s=16, few-heavy stream)",
        &[
            "factor",
            "capacity",
            "early",
            "total",
            "max_frac",
            "frac_bound 1/(c·s)",
        ],
    );
    for &factor in &[1.0f64, 2.0, 4.0, 8.0] {
        let cfg = SworConfig::new(s, k).with_level_capacity_factor(factor);
        let cap = cfg.level_capacity();
        let runner = run_swor(cfg, &items, Partition::RoundRobin, 74);
        table.row(&[
            f(factor),
            n(cap as u64),
            n(runner.metrics.kind("early")),
            n(runner.metrics.total()),
            f(runner.coordinator.stats.max_release_fraction),
            f(1.0 / (factor * s as f64)),
        ]);
    }
    table.print();
    println!("[the paper's factor 4 buys a 4x stronger heavy-item margin for a bounded early-message premium]");
}

/// E16: epoch-base sweep — the paper's `r = max(2, k/s)` against other
/// choices; too small means many epoch broadcasts, too large means weak
/// filtering.
pub fn e16_ablation_r(scale: Scale) {
    let n_items = scale.pick(1 << 13, 1 << 17);
    let items = uniform_weights(n_items, 1.0, 2.0, 71);
    let w = total_weight(&items);
    let mut table = Table::new(
        "E16 — epoch base r sweep (k=256, s=16), uniform stream",
        &["r", "early", "regular", "bcasts*k", "total"],
    );
    let (k, s) = (256usize, 16usize);
    let default_r = (k as f64 / s as f64).max(2.0);
    for (label, r) in [
        ("2".to_string(), 2.0),
        (format!("k/s = {default_r}"), default_r),
        (format!("4k/s = {}", 4.0 * default_r), 4.0 * default_r),
        ("256".to_string(), 256.0),
    ] {
        let cfg = SworConfig::new(s, k).with_r(r);
        let runner = run_swor(cfg, &items, Partition::RoundRobin, 72);
        let m = &runner.metrics;
        table.row(&[
            label,
            n(m.kind("early")),
            n(m.kind("regular")),
            n(m.kind("update_epoch") + m.kind("level_saturated")),
            n(m.total()),
        ]);
    }
    table.print();
    let _ = w;
    println!("[paper's r = max(2, k/s) balances broadcast cost (k per epoch) against filtering granularity]");
}
