//! E5: distributed weighted SWR (Corollary 1) — message complexity and
//! marginal distribution.

use dwrs_core::item::total_weight;
use dwrs_core::swr::SwrConfig;
use dwrs_core::Item;
use dwrs_sim::{assign_sites, build_swr, Partition};

use crate::exps::util::swr_bound;
use crate::table::{f, n, Table};
use crate::Scale;

/// E5: message counts across W, plus a marginal-distribution check.
pub fn e5_swr(scale: Scale) {
    let (k, s) = (16usize, 16usize);
    let mut table = Table::new(
        "E5a — weighted SWR messages vs W (k=16, s=16); Cor. 1: (k+s·ln s)·lnW/ln(2+k/s)",
        &[
            "n",
            "W",
            "candidates",
            "bcast_evts",
            "total",
            "bound",
            "ratio",
        ],
    );
    let mut pow = scale.pick(10, 12);
    let max_pow = scale.pick(12, 18);
    while pow <= max_pow {
        let n_items = 1usize << pow;
        // Integer weights 1..=10 (the reduction requires integers).
        let items: Vec<Item> = (0..n_items as u64)
            .map(|i| Item::new(i, 1.0 + (i % 10) as f64))
            .collect();
        let w = total_weight(&items);
        let mut runner = build_swr(SwrConfig::new(s, k), 21);
        let sites = assign_sites(Partition::RoundRobin, k, n_items, 22);
        runner.run(sites.into_iter().zip(items.iter().copied()));
        let m = &runner.metrics;
        let bound = swr_bound(k, s, w);
        table.row(&[
            n(n_items as u64),
            f(w),
            n(m.kind("candidate")),
            n(m.broadcast_events),
            n(m.total()),
            f(bound),
            f(m.total() as f64 / bound),
        ]);
        pow += 2;
    }
    table.print();

    // Marginal check: heaviest item frequency across independent runs.
    let weights = [1.0f64, 2.0, 3.0, 10.0];
    let wtot: f64 = weights.iter().sum();
    let trials = scale.pick(2_000u64, 20_000u64);
    let s_small = 4usize;
    let mut hits = 0u64;
    for t in 0..trials {
        let mut runner = build_swr(SwrConfig::new(s_small, 2), 100 + t);
        for (i, &w) in weights.iter().enumerate() {
            runner.step(i % 2, Item::new(i as u64, w));
        }
        hits += runner
            .coordinator
            .sample()
            .iter()
            .filter(|it| it.id == 3)
            .count() as u64;
    }
    let draws = trials * s_small as u64;
    let emp = hits as f64 / draws as f64;
    let p = weights[3] / wtot;
    let se = (p * (1.0 - p) / draws as f64).sqrt();
    let z = (emp - p) / se;
    println!(
        "E5b marginal: P(slot = heaviest) empirical {emp:.4} vs exact {p:.4} (z = {z:.2}) — {}",
        if z.abs() < 4.5 { "PASS" } else { "FAIL" }
    );
}
