//! E9–E11: residual heavy hitters (Theorem 4) — recall vs the
//! with-replacement baseline, message complexity vs ε, and the Theorem 5
//! lower-bound instances.

use dwrs_apps::residual_hh::{
    exact_residual_heavy_hitters, recall, ResidualHeavyHitters, ResidualHhConfig,
};
use dwrs_core::centralized::{OnlineWeightedSwr, StreamSampler};
use dwrs_core::item::total_weight;
use dwrs_workloads::{exploding, residual_skew, weighted_epochs, zipf_ranked};

use crate::exps::util::rhh_bound;
use crate::table::{f, n, Table};
use crate::Scale;

/// E9: SWOR-based residual-HH recall vs a with-replacement sampler of the
/// same budget — the paper's motivating separation (Section 1, Section 4).
pub fn e9_recall(scale: Scale) {
    let k = 4usize;
    let runs = scale.pick(5u64, 25u64);
    let n_items = scale.pick(400usize, 2_000usize);
    let mut table = Table::new(
        "E9 — residual heavy hitter recall: SWOR (Thm 4) vs SWR baseline, same budget",
        &[
            "stream",
            "eps",
            "s",
            "|required|",
            "swor_recall",
            "swr_recall",
        ],
    );
    let cases = [
        ("residual_skew(top=3)", 3usize, 0.25f64),
        ("residual_skew(top=6)", 6, 0.25),
        ("zipf(1.5)", 0, 0.1),
    ];
    for (name, top, eps) in cases {
        let cfg = ResidualHhConfig::new(eps, 0.1, k);
        let s = cfg.sample_size();
        let mut want_len = 0usize;
        let (mut sum_swor, mut sum_swr) = (0.0f64, 0.0f64);
        for run in 0..runs {
            let items = if top > 0 {
                residual_skew(n_items, top, 900 + run)
            } else {
                zipf_ranked(n_items, 1.5, 900 + run)
            };
            let want = exact_residual_heavy_hitters(&items, eps);
            want_len = want.len();
            let mut tracker = ResidualHeavyHitters::new(cfg.clone(), 7_000 + run);
            for (t, it) in items.iter().enumerate() {
                tracker.observe(t % k, *it);
            }
            sum_swor += recall(&want, &tracker.query());
            // Same sample budget for the with-replacement baseline; its
            // distribution equals the distributed SWR (Corollary 1).
            let mut swr = OnlineWeightedSwr::new(s, 8_000 + run);
            for it in &items {
                swr.observe(*it);
            }
            let mut got = swr.sample();
            got.sort_by(|a, b| b.weight.total_cmp(&a.weight));
            got.dedup_by_key(|i| i.id);
            got.truncate(cfg.output_size());
            sum_swr += recall(&want, &got);
        }
        table.row(&[
            name.into(),
            f(eps),
            n(s as u64),
            n(want_len as u64),
            f(sum_swor / runs as f64),
            f(sum_swr / runs as f64),
        ]);
    }
    table.print();
    println!(
        "[Thm 4: SWOR recall ≈ 1; with-replacement samplers drown in the giants on skewed streams]"
    );
}

/// E10: residual-HH message complexity vs ε (Theorem 4's bound).
pub fn e10_messages(scale: Scale) {
    let k = 32usize;
    let delta = 0.1f64;
    let n_items = scale.pick(1 << 12, 1 << 16);
    let items = zipf_ranked(n_items, 1.3, 10);
    let w = total_weight(&items);
    let mut table = Table::new(
        "E10 — residual-HH messages vs eps (k=32, Zipf 1.3); Thm 4 bound",
        &["eps", "s", "total_msgs", "bound", "ratio"],
    );
    for &eps in scale.pick(&[0.2f64, 0.4][..], &[0.05f64, 0.1, 0.2, 0.4][..]) {
        let cfg = ResidualHhConfig::new(eps, delta, k);
        let s = cfg.sample_size();
        let mut tracker = ResidualHeavyHitters::new(cfg, 11);
        for (t, it) in items.iter().enumerate() {
            tracker.observe(t % k, *it);
        }
        let bound = rhh_bound(k, eps, delta, w);
        table.row(&[
            f(eps),
            n(s as u64),
            n(tracker.messages()),
            f(bound),
            f(tracker.messages() as f64 / bound),
        ]);
    }
    table.print();
}

/// E11: the Theorem 5 lower-bound instances — measured message counts of
/// the tracker on the adversarial streams, against the Ω(k·logW/log k +
/// logW/ε) bound (the ratio measured/bound estimates the constant; the
/// lower bound says no correct algorithm can push it to 0).
pub fn e11_lower_bound(scale: Scale) {
    let mut table = Table::new(
        "E11 — Thm 5 hard instances: messages vs Ω(k·lnW/ln k + lnW/eps)",
        &[
            "instance",
            "k",
            "eps",
            "n",
            "msgs",
            "lower_bound",
            "msgs/bound",
        ],
    );
    // Instance 1: exploding stream — forces the ε term.
    let eps = scale.pick(0.1, 0.05);
    let items = exploding(eps, scale.pick(1e9, 1e13), 1 << 20);
    let k = 8usize;
    let cfg = ResidualHhConfig::new(eps, 0.1, k);
    let mut tracker = ResidualHeavyHitters::new(cfg, 13);
    for (t, it) in items.iter().enumerate() {
        tracker.observe(t % k, *it);
    }
    let w = total_weight(&items);
    let lb = w.ln() / eps;
    table.row(&[
        "exploding".into(),
        n(k as u64),
        f(eps),
        n(items.len() as u64),
        n(tracker.messages()),
        f(lb),
        f(tracker.messages() as f64 / lb),
    ]);
    // Instance 2: k^i weighted epochs — forces the k·logW/log k term.
    let k = scale.pick(16usize, 64usize);
    let eta = scale.pick(4u32, 5u32);
    let inst = weighted_epochs(k, eta);
    let eps2 = 0.25;
    let cfg = ResidualHhConfig::new(eps2, 0.1, k);
    let mut tracker = ResidualHeavyHitters::new(cfg, 14);
    let mut w2 = 0.0;
    for (site, it) in &inst {
        tracker.observe(*site, *it);
        w2 += it.weight;
    }
    let lb2 = k as f64 * w2.ln() / (k as f64).ln();
    table.row(&[
        "k^i epochs".into(),
        n(k as u64),
        f(eps2),
        n(inst.len() as u64),
        n(tracker.messages()),
        f(lb2),
        f(tracker.messages() as f64 / lb2),
    ]);
    table.print();
    println!("[lower bound: every correct tracker pays Ω(·) on these streams; ratios ≥ some constant > 0 and O(1) certify near-tightness]");
}
