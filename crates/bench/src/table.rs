//! Minimal fixed-width table printer for experiment output.

/// A printable table with a title and aligned columns.
#[derive(Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for i in 0..ncols {
                line.push_str(&format!("{:>w$} ", cells[i], w = widths[i]));
                line.push_str("| ");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let sep: String = {
            let mut s = String::from("|-");
            for w in &widths {
                s.push_str(&"-".repeat(w + 1));
                s.push_str("|-");
            }
            s.trim_end_matches("-").trim_end_matches("|-").to_string() + "|"
        };
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 3 significant-ish decimals.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Format an integer-valued count.
pub fn n(x: u64) -> String {
    x.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["100".into(), "20000".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long_header"));
        assert_eq!(s.lines().filter(|l| l.starts_with('|')).count(), 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.6), "1235");
        assert_eq!(f(42.26), "42.3");
        assert_eq!(f(1.23456), "1.235");
    }
}
