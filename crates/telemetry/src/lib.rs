//! # dwrs-telemetry
//!
//! Observability layer for the dwrs runtime: a lock-cheap metrics
//! [`Registry`] (atomic counters and gauges, sketch-backed ε-approximate
//! histograms), fixed-capacity [`TraceRing`]s of structured events, and
//! exposition rendering (Prometheus text / JSON) for the daemon's
//! `TAG_METRICS` control frame.
//!
//! The design mirrors how the engines already account messages: hot paths
//! record into thread-local state (an `Arc<Counter>` handle, a local
//! [`dwrs_stats::QuantileSketch`]) and fold into shared state at batch
//! boundaries,
//! exactly like per-thread `Metrics` merging into a run total. A scrape
//! reads relaxed atomics and short-lived mutexes — it never stalls the
//! data plane.
//!
//! Process-wide instrumentation goes through [`global()`], so the engine
//! site/coordinator loops, the sharded dispatcher and the tree tiers can
//! meter themselves without threading a handle through every signature.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod names;
pub mod registry;
pub mod render;
pub mod trace;

pub use names::*;
pub use registry::{summarize, Counter, Gauge, Histogram, Registry, HISTOGRAM_EPS};
pub use render::{render_json, render_prometheus};
pub use trace::{event_name, TraceKind, TraceRing, DEFAULT_RING_CAPACITY};

use std::sync::OnceLock;
use std::time::Instant;

/// One process's telemetry: the shared registry, the process-level trace
/// ring, and the monotonic epoch every nanosecond timestamp is relative
/// to.
#[derive(Debug)]
pub struct Telemetry {
    /// The metric registry.
    pub registry: Registry,
    /// Process/daemon-level events (connections, ctrl errors, shutdown).
    pub trace: TraceRing,
    epoch: Instant,
}

impl Telemetry {
    /// A fresh telemetry instance with its own epoch.
    pub fn new() -> Self {
        let epoch = Instant::now();
        Self {
            registry: Registry::new(),
            trace: TraceRing::with_epoch(DEFAULT_RING_CAPACITY, epoch),
            epoch,
        }
    }

    /// The monotonic epoch; share it with per-stream [`TraceRing`]s so
    /// all timestamps in one report are comparable.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Nanoseconds since the epoch.
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide telemetry instance, created on first use. Engine
/// loops, the dispatcher and the daemon all record here; the daemon's
/// scrape handler snapshots it into a `MetricsReport`.
pub fn global() -> &'static Telemetry {
    static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
    GLOBAL.get_or_init(Telemetry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_stable_and_ticks() {
        let t1 = global();
        let t2 = global();
        assert!(std::ptr::eq(t1, t2));
        let a = t1.now_nanos();
        let b = t1.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn fresh_instances_are_isolated() {
        let t = Telemetry::new();
        t.registry.counter("x").add(5);
        let u = Telemetry::new();
        assert_eq!(u.registry.counter("x").get(), 0);
        assert_eq!(t.registry.counter("x").get(), 5);
    }
}
