//! Fixed-capacity trace rings for structured runtime events.
//!
//! A [`TraceRing`] is a preallocated circular buffer of [`TraceEvent`]s:
//! recording overwrites the oldest slot in place — no allocation on the
//! hot path — and stamps each event with a per-ring sequence number and
//! nanoseconds since the ring's epoch. The daemon keeps one ring per
//! stream (attach/detach/sync/drain history) plus one daemon-level ring
//! (connections, ctrl errors, shutdown); scrapes copy the newest events
//! out through the stream's command queue.

use std::sync::Mutex;
use std::time::Instant;

use dwrs_core::ctrl::TraceEvent;

/// The structured event vocabulary. Codes are wire-stable: they appear in
/// [`TraceEvent::code`] and the operator catalog in `docs/DAEMON.md`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A stream was created (`a` = k slots, `b` = effective sample size).
    Create,
    /// A site attached to a fresh slot (`a` = site).
    Attach,
    /// A site detached, slot kept resumable (`a` = site, `b` = items fed).
    Detach,
    /// A previously detached slot reattached (`a` = site, `b` = prior items).
    Reconnect,
    /// The coordinator broadcast a new epoch threshold (`a` = the
    /// threshold's `f64::to_bits`).
    EpochBroadcast,
    /// The coordinator broadcast a level saturation (`a` = level).
    Saturation,
    /// A tree tier completed a sync round (`a` = group, `b` = round).
    Sync,
    /// A site finished its feed with Eof (`a` = site, `b` = items fed).
    Eof,
    /// A drain completed and the stream retired (`b` = total items).
    Drain,
    /// A control request was refused (`a` = request tag byte).
    CtrlError,
    /// A connection was accepted (`a` = connection ordinal).
    Connection,
    /// The daemon began shutdown (`a` = streams still live).
    Shutdown,
    /// An accept failed on `EMFILE`/`ENFILE` (`a` = the current
    /// `RLIMIT_NOFILE` soft limit).
    FdExhausted,
}

impl TraceKind {
    /// The wire code carried in [`TraceEvent::code`].
    pub fn as_u8(self) -> u8 {
        match self {
            TraceKind::Create => 1,
            TraceKind::Attach => 2,
            TraceKind::Detach => 3,
            TraceKind::Reconnect => 4,
            TraceKind::EpochBroadcast => 5,
            TraceKind::Saturation => 6,
            TraceKind::Sync => 7,
            TraceKind::Eof => 8,
            TraceKind::Drain => 9,
            TraceKind::CtrlError => 10,
            TraceKind::Connection => 11,
            TraceKind::Shutdown => 12,
            TraceKind::FdExhausted => 13,
        }
    }

    /// Decodes a wire code.
    pub fn from_u8(b: u8) -> Option<Self> {
        Self::all().into_iter().find(|k| k.as_u8() == b)
    }

    /// The operator-facing event name (the trace catalog key).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Create => "create",
            TraceKind::Attach => "attach",
            TraceKind::Detach => "detach",
            TraceKind::Reconnect => "reconnect",
            TraceKind::EpochBroadcast => "epoch-broadcast",
            TraceKind::Saturation => "saturation",
            TraceKind::Sync => "sync",
            TraceKind::Eof => "eof",
            TraceKind::Drain => "drain",
            TraceKind::CtrlError => "ctrl-error",
            TraceKind::Connection => "connection",
            TraceKind::Shutdown => "shutdown",
            TraceKind::FdExhausted => "fd-exhausted",
        }
    }

    /// All kinds, in wire-code order.
    pub fn all() -> [TraceKind; 13] {
        [
            TraceKind::Create,
            TraceKind::Attach,
            TraceKind::Detach,
            TraceKind::Reconnect,
            TraceKind::EpochBroadcast,
            TraceKind::Saturation,
            TraceKind::Sync,
            TraceKind::Eof,
            TraceKind::Drain,
            TraceKind::CtrlError,
            TraceKind::Connection,
            TraceKind::Shutdown,
            TraceKind::FdExhausted,
        ]
    }
}

/// The operator-facing name for a wire code, `"event-NN"` for codes this
/// build does not know (forward compatibility across versions).
pub fn event_name(code: u8) -> String {
    match TraceKind::from_u8(code) {
        Some(k) => k.name().to_string(),
        None => format!("event-{code}"),
    }
}

/// Default ring capacity: enough to hold a stream's recent protocol
/// history without ever growing.
pub const DEFAULT_RING_CAPACITY: usize = 128;

struct RingInner {
    /// Preallocated storage; len grows to capacity once, then stays.
    buf: Vec<TraceEvent>,
    /// Index of the slot the next event overwrites.
    head: usize,
    /// Sequence number of the next event (total events ever recorded).
    seq: u64,
}

/// A fixed-capacity, allocation-free-once-built event ring.
pub struct TraceRing {
    epoch: Instant,
    inner: Mutex<RingInner>,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("trace ring poisoned");
        f.debug_struct("TraceRing")
            .field("capacity", &inner.buf.capacity())
            .field("seq", &inner.seq)
            .finish()
    }
}

impl TraceRing {
    /// A ring that keeps the newest `capacity` events, stamping them
    /// relative to `epoch` (share one epoch across rings so timestamps in
    /// one report are comparable).
    pub fn with_epoch(capacity: usize, epoch: Instant) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        Self {
            epoch,
            inner: Mutex::new(RingInner {
                buf: Vec::with_capacity(capacity),
                head: 0,
                seq: 0,
            }),
        }
    }

    /// A ring with its own epoch (now) and [`DEFAULT_RING_CAPACITY`].
    pub fn new() -> Self {
        Self::with_epoch(DEFAULT_RING_CAPACITY, Instant::now())
    }

    /// Records one event, overwriting the oldest slot when full. Returns
    /// the event's sequence number. No allocation once the ring has
    /// wrapped; before that, slots are appended into preallocated space.
    pub fn record(&self, kind: TraceKind, a: u64, b: u64) -> u64 {
        let nanos = self.epoch.elapsed().as_nanos() as u64;
        let mut inner = self.inner.lock().expect("trace ring poisoned");
        let seq = inner.seq;
        let event = TraceEvent {
            seq,
            nanos,
            code: kind.as_u8(),
            a,
            b,
        };
        let head = inner.head;
        if inner.buf.len() < inner.buf.capacity() {
            inner.buf.push(event);
        } else {
            inner.buf[head] = event;
        }
        inner.head = (head + 1) % inner.buf.capacity();
        inner.seq += 1;
        seq
    }

    /// Total events ever recorded (snapshot gaps below this mean wrap).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("trace ring poisoned").seq
    }

    /// Copies out the newest `last` events, oldest first.
    pub fn snapshot(&self, last: usize) -> Vec<TraceEvent> {
        let inner = self.inner.lock().expect("trace ring poisoned");
        let len = inner.buf.len();
        let take = last.min(len);
        let mut out = Vec::with_capacity(take);
        // Events in chronological order start at `head` when full, at 0
        // before the first wrap.
        let start = if len < inner.buf.capacity() {
            0
        } else {
            inner.head
        };
        for i in (len - take)..len {
            out.push(inner.buf[(start + i) % len.max(1)]);
        }
        out
    }
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip_and_names_are_unique() {
        let mut names = std::collections::BTreeSet::new();
        for k in TraceKind::all() {
            assert_eq!(TraceKind::from_u8(k.as_u8()), Some(k));
            assert!(names.insert(k.name()), "duplicate name {}", k.name());
        }
        assert_eq!(TraceKind::from_u8(0), None);
        assert_eq!(event_name(TraceKind::Sync.as_u8()), "sync");
        assert_eq!(event_name(250), "event-250");
    }

    #[test]
    fn ring_keeps_newest_in_order() {
        let ring = TraceRing::with_epoch(4, Instant::now());
        for i in 0..10u64 {
            let seq = ring.record(TraceKind::Attach, i, 0);
            assert_eq!(seq, i);
        }
        assert_eq!(ring.recorded(), 10);
        let snap = ring.snapshot(16);
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9], "newest capacity-many, oldest first");
        let two = ring.snapshot(2);
        assert_eq!(two.len(), 2);
        assert_eq!(two[0].seq, 8);
        assert_eq!(two[1].seq, 9);
        assert!(snap.windows(2).all(|w| w[0].nanos <= w[1].nanos));
    }

    #[test]
    fn partial_ring_snapshots_from_start() {
        let ring = TraceRing::with_epoch(8, Instant::now());
        ring.record(TraceKind::Create, 1, 2);
        ring.record(TraceKind::Eof, 3, 4);
        let snap = ring.snapshot(8);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].code, TraceKind::Create.as_u8());
        assert_eq!(snap[0].a, 1);
        assert_eq!(snap[1].b, 4);
        assert!(ring.snapshot(0).is_empty());
    }
}
