//! Renders a [`MetricsReport`] for operators: Prometheus exposition text
//! for scrapers, single-line-friendly JSON for tooling. Both the daemon
//! CLI (`dwrs metrics`) and tests render through here so every consumer
//! sees the identical shape.

use dwrs_core::ctrl::{HistSummary, MetricKind, MetricsReport, StreamMetrics, TraceEvent};

use crate::trace::event_name;

fn prom_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn prom_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn push_summary(out: &mut String, name: &str, labels: &str, h: &HistSummary) {
    let sep = if labels.is_empty() { "" } else { "," };
    for (q, v) in [
        ("0.5", h.p50),
        ("0.9", h.p90),
        ("0.95", h.p95),
        ("0.99", h.p99),
        ("1", h.max),
    ] {
        out.push_str(&format!(
            "{name}{{{labels}{sep}quantile=\"{q}\"}} {}\n",
            prom_f64(v)
        ));
    }
    let brace = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push_str(&format!("{name}_count{brace} {}\n", h.count));
}

/// Prometheus exposition text: the global registry, daemon lifetime
/// gauges, and per-stream series labeled `stream="<name>"`.
pub fn render_prometheus(report: &MetricsReport) -> String {
    let mut out = String::new();
    out.push_str("# TYPE dwrs_uptime_seconds gauge\n");
    out.push_str(&format!(
        "dwrs_uptime_seconds {}\n",
        report.uptime_nanos as f64 / 1e9
    ));
    out.push_str("# TYPE dwrs_streams_created_total counter\n");
    out.push_str(&format!(
        "dwrs_streams_created_total {}\n",
        report.streams_created
    ));
    for s in &report.samples {
        out.push_str(&format!("# TYPE {} {}\n", s.name, s.kind.prom_type()));
        match (s.kind, &s.hist) {
            (MetricKind::Histogram, Some(h)) => push_summary(&mut out, &s.name, "", h),
            (MetricKind::Histogram, None) => {
                out.push_str(&format!("{}_count 0\n", s.name));
            }
            _ => out.push_str(&format!("{} {}\n", s.name, prom_f64(s.value))),
        }
    }
    for st in &report.streams {
        let label = format!("stream=\"{}\"", prom_label(&st.stream));
        out.push_str(&format!(
            "dwrs_stream_items_total{{{label}}} {}\n",
            st.items
        ));
        out.push_str(&format!(
            "dwrs_stream_sites_attached{{{label}}} {}\n",
            st.sites_attached
        ));
        out.push_str(&format!(
            "dwrs_stream_sites_eof{{{label}}} {}\n",
            st.sites_eof
        ));
        out.push_str(&format!(
            "dwrs_stream_queue_depth{{{label}}} {}\n",
            st.queue_depth
        ));
        out.push_str(&format!(
            "dwrs_stream_queries_total{{{label}}} {}\n",
            st.queries
        ));
        if let Some(h) = &st.latency {
            push_summary(&mut out, "dwrs_stream_query_latency_ns", &label, h);
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

fn json_hist(h: &Option<HistSummary>) -> String {
    match h {
        None => "null".into(),
        Some(h) => format!(
            "{{\"count\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
            h.count,
            json_f64(h.p50),
            json_f64(h.p90),
            json_f64(h.p95),
            json_f64(h.p99),
            json_f64(h.max)
        ),
    }
}

fn json_events(events: &[TraceEvent]) -> String {
    let entries: Vec<String> = events
        .iter()
        .map(|e| {
            format!(
                "{{\"seq\":{},\"nanos\":{},\"event\":\"{}\",\"a\":{},\"b\":{}}}",
                e.seq,
                e.nanos,
                event_name(e.code),
                e.a,
                e.b
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

fn json_stream(st: &StreamMetrics) -> String {
    format!(
        concat!(
            "{{\"stream\":\"{}\",\"query\":\"{}\",\"items\":{},",
            "\"sites_attached\":{},\"sites_eof\":{},\"queue_depth\":{},",
            "\"queue_capacity\":{},\"queries\":{},\"latency\":{},",
            "\"events\":{}}}"
        ),
        json_escape(&st.stream),
        json_escape(&st.query),
        st.items,
        st.sites_attached,
        st.sites_eof,
        st.queue_depth,
        st.queue_capacity,
        st.queries,
        json_hist(&st.latency),
        json_events(&st.events)
    )
}

/// The report as one JSON object (pretty enough for `jq`, stable enough
/// for scripts): `now_nanos`, `uptime_nanos`, `streams_created`, a
/// `metrics` array mirroring the registry, `events`, and a `streams`
/// array of per-stream sections.
pub fn render_json(report: &MetricsReport) -> String {
    let samples: Vec<String> = report
        .samples
        .iter()
        .map(|s| {
            format!(
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"value\":{},\"summary\":{}}}",
                json_escape(&s.name),
                s.kind.prom_type(),
                json_f64(s.value),
                json_hist(&s.hist)
            )
        })
        .collect();
    let streams: Vec<String> = report.streams.iter().map(json_stream).collect();
    format!(
        concat!(
            "{{\"now_nanos\":{},\"uptime_nanos\":{},\"streams_created\":{},",
            "\"metrics\":[{}],\"events\":{},\"streams\":[{}]}}"
        ),
        report.now_nanos,
        report.uptime_nanos,
        report.streams_created,
        samples.join(","),
        json_events(&report.events),
        streams.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwrs_core::ctrl::MetricSample;

    fn report() -> MetricsReport {
        MetricsReport {
            now_nanos: 5_000,
            uptime_nanos: 2_000_000_000,
            streams_created: 2,
            samples: vec![
                MetricSample {
                    name: "dwrs_items_total".into(),
                    kind: MetricKind::Counter,
                    value: 10.0,
                    hist: None,
                },
                MetricSample {
                    name: "dwrs_query_latency_ns".into(),
                    kind: MetricKind::Histogram,
                    value: 3.0,
                    hist: Some(HistSummary {
                        count: 3,
                        p50: 100.0,
                        p90: 200.0,
                        p95: 200.0,
                        p99: 200.0,
                        max: 250.0,
                    }),
                },
            ],
            events: vec![TraceEvent {
                seq: 0,
                nanos: 17,
                code: crate::trace::TraceKind::Connection.as_u8(),
                a: 1,
                b: 0,
            }],
            streams: vec![StreamMetrics {
                stream: "s1".into(),
                query: "swor".into(),
                items: 42,
                sites_attached: 2,
                sites_eof: 0,
                queue_depth: 1,
                queue_capacity: 64,
                queries: 5,
                latency: None,
                events: vec![],
            }],
        }
    }

    #[test]
    fn prometheus_shape() {
        let text = render_prometheus(&report());
        assert!(text.contains("# TYPE dwrs_items_total counter\n"));
        assert!(text.contains("dwrs_items_total 10\n"));
        assert!(text.contains("# TYPE dwrs_query_latency_ns summary\n"));
        assert!(text.contains("dwrs_query_latency_ns{quantile=\"0.5\"} 100\n"));
        assert!(text.contains("dwrs_query_latency_ns_count 3\n"));
        assert!(text.contains("dwrs_uptime_seconds 2\n"));
        assert!(text.contains("dwrs_stream_items_total{stream=\"s1\"} 42\n"));
        assert!(text.contains("dwrs_stream_queue_depth{stream=\"s1\"} 1\n"));
    }

    #[test]
    fn json_shape() {
        let js = render_json(&report());
        assert!(js.starts_with("{\"now_nanos\":5000,"));
        assert!(js.contains("\"name\":\"dwrs_items_total\",\"kind\":\"counter\",\"value\":10"));
        assert!(js.contains("\"summary\":{\"count\":3,\"p50\":100,"));
        assert!(js.contains("\"event\":\"connection\""));
        assert!(js.contains("\"stream\":\"s1\",\"query\":\"swor\",\"items\":42"));
        assert!(js.contains("\"latency\":null"));
    }
}
