//! The stable metric-name catalog.
//!
//! Every series the runtime emits is named here, once, so operators can
//! grep dashboards against a single table and the doc-sync test
//! (`tests/daemon_docs.rs`) can assert `docs/DAEMON.md` documents each.
//! Names follow the Prometheus convention: `dwrs_` prefix, `_total` suffix
//! for counters, unit suffix (`_ns`, `_items`) for histograms.

/// Items observed by site loops and daemon stream processors.
pub const METRIC_ITEMS_TOTAL: &str = "dwrs_items_total";
/// Site → coordinator protocol messages sent.
pub const METRIC_UP_MESSAGES_TOTAL: &str = "dwrs_up_messages_total";
/// Coordinator → site protocol messages sent (a broadcast counts `k`).
pub const METRIC_DOWN_MESSAGES_TOTAL: &str = "dwrs_down_messages_total";
/// Exact wire bytes moved in either direction.
pub const METRIC_WIRE_BYTES_TOTAL: &str = "dwrs_wire_bytes_total";
/// Epoch/saturation broadcast events at the coordinator.
pub const METRIC_BROADCAST_EVENTS_TOTAL: &str = "dwrs_broadcast_events_total";
/// Site-side batch flushes (one per drained outbox).
pub const METRIC_SITE_FLUSHES_TOTAL: &str = "dwrs_site_flushes_total";
/// Tree-topology inter-tier sync rounds.
pub const METRIC_TREE_SYNCS_TOTAL: &str = "dwrs_tree_syncs_total";
/// Frames handed to sites by the sharded dispatcher.
pub const METRIC_DISPATCH_FRAMES_TOTAL: &str = "dwrs_dispatch_frames_total";
/// Live queries answered by stream processors (drains included).
pub const METRIC_LIVE_QUERIES_TOTAL: &str = "dwrs_live_queries_total";
/// Control requests refused with `CtrlResp::Err`.
pub const METRIC_CTRL_ERRORS_TOTAL: &str = "dwrs_ctrl_errors_total";
/// Control/data connections accepted by the daemon listener.
pub const METRIC_CONNECTIONS_TOTAL: &str = "dwrs_connections_total";
/// Telemetry scrapes served (`TAG_METRICS`).
pub const METRIC_SCRAPES_TOTAL: &str = "dwrs_metrics_scrapes_total";
/// Streams currently live in the daemon.
pub const METRIC_STREAMS_ACTIVE: &str = "dwrs_streams_active";
/// Site slots currently attached across all streams.
pub const METRIC_SITES_ATTACHED: &str = "dwrs_sites_attached";
/// Frames in flight inside the sharded dispatcher right now.
pub const METRIC_DISPATCH_QUEUE_DEPTH: &str = "dwrs_dispatch_queue_depth";
/// Distribution of items per dispatched/ingested frame.
pub const METRIC_FRAME_ITEMS: &str = "dwrs_frame_items";
/// Distribution of nanoseconds between consecutive site flushes
/// (flush cadence).
pub const METRIC_FLUSH_INTERVAL_NS: &str = "dwrs_flush_interval_ns";
/// Distribution of live-query service latency in nanoseconds, measured
/// from dequeue to answer inside the stream processor.
pub const METRIC_QUERY_LATENCY_NS: &str = "dwrs_query_latency_ns";
/// Connections currently registered across all reactor event loops
/// (`epoll` engine site/coordinator loops and the daemon data plane).
pub const METRIC_REACTOR_REGISTERED_FDS: &str = "dwrs_reactor_registered_fds";
/// Readiness events delivered by `epoll_wait` across all reactor loops.
pub const METRIC_REACTOR_EVENTS_TOTAL: &str = "dwrs_reactor_events_total";
/// Distribution of nanoseconds a reactor loop spends servicing one wake
/// (reads, frame decode, protocol dispatch, write flushes) before it
/// blocks in `epoll_wait` again.
pub const METRIC_REACTOR_SERVICE_NS: &str = "dwrs_reactor_service_ns";
