//! The lock-cheap metrics registry.
//!
//! Hot paths never touch the registry map: they look a metric up once
//! (getting an `Arc` handle) and then work on atomics. Counters and gauges
//! are single `AtomicU64`/`AtomicI64` cells with relaxed ordering — a
//! scrape is a statistical read, not a synchronization point. Histograms
//! wrap the mergeable [`QuantileSketch`]; high-rate producers keep a local
//! sketch and fold it in at batch boundaries via [`Histogram::merge_local`],
//! exactly how per-thread `Metrics` fold into a run total today.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dwrs_core::ctrl::{HistSummary, MetricKind, MetricSample};
use dwrs_stats::QuantileSketch;

/// Rank-error tolerance for registry histograms: 1% is plenty for p50–p99
/// operational percentiles and keeps each sketch to a few KB.
pub const HISTOGRAM_EPS: f64 = 0.01;

/// A monotonically non-decreasing count.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — counters are statistics: increments from hot
        // paths must cost one uncontended RMW and nothing more. Exactness
        // comes from fetch_add atomicity, not from ordering.
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — scrape-time read; a reading that misses a
        // concurrent increment is indistinguishable from scraping a
        // moment earlier.
        self.v.load(Ordering::Relaxed)
    }
}

/// An instantaneous level that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        // ordering: Relaxed — gauges carry no payload besides the value
        // itself; readers never infer other memory state from a level.
        self.v.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `d` (may be negative).
    pub fn add(&self, d: i64) {
        // ordering: Relaxed — same statistics-only contract as `set`.
        self.v.fetch_add(d, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        // ordering: Relaxed — instantaneous scrape of a freestanding level.
        self.v.load(Ordering::Relaxed)
    }
}

/// An ε-approximate distribution backed by a [`QuantileSketch`].
#[derive(Debug)]
pub struct Histogram {
    sketch: Mutex<QuantileSketch>,
}

impl Histogram {
    fn new() -> Self {
        Self {
            sketch: Mutex::new(QuantileSketch::new(HISTOGRAM_EPS)),
        }
    }

    /// Records one observation. Takes the lock — fine for per-flush or
    /// per-query rates; per-item producers should batch through
    /// [`Histogram::merge_local`] instead.
    pub fn observe(&self, v: f64) {
        self.sketch.lock().expect("histogram poisoned").observe(v);
    }

    /// Folds a thread-local sketch in and clears it, so a producer pays
    /// for the lock once per batch instead of once per observation. The
    /// local sketch must use [`HISTOGRAM_EPS`] (see
    /// [`Histogram::local_sketch`]).
    pub fn merge_local(&self, local: &mut QuantileSketch) {
        if local.is_empty() {
            return;
        }
        self.sketch.lock().expect("histogram poisoned").merge(local);
        local.clear();
    }

    /// A fresh thread-local sketch compatible with [`Histogram::merge_local`].
    pub fn local_sketch() -> QuantileSketch {
        QuantileSketch::new(HISTOGRAM_EPS)
    }

    /// Observations folded in so far.
    pub fn count(&self) -> u64 {
        self.sketch.lock().expect("histogram poisoned").count()
    }

    /// The current percentile digest; `None` while empty.
    pub fn summary(&self) -> Option<HistSummary> {
        summarize(&mut self.sketch.lock().expect("histogram poisoned"))
    }
}

/// Digests any sketch into the wire [`HistSummary`]; `None` while empty.
/// Shared by registry histograms, the daemon's per-stream latency sketches
/// and the CLI's client-side round-trip sketch.
pub fn summarize(sketch: &mut QuantileSketch) -> Option<HistSummary> {
    if sketch.is_empty() {
        return None;
    }
    Some(HistSummary {
        count: sketch.count(),
        p50: sketch.query(0.5).expect("non-empty"),
        p90: sketch.query(0.9).expect("non-empty"),
        p95: sketch.query(0.95).expect("non-empty"),
        p99: sketch.query(0.99).expect("non-empty"),
        max: sketch.max().expect("non-empty"),
    })
}

/// Named metrics, grouped by type. Lookup takes a short mutex on a
/// `BTreeMap`; handles are `Arc`s that hot paths cache outside their loops.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .expect("registry poisoned")
                .entry(name)
                .or_default(),
        )
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .expect("registry poisoned")
                .entry(name)
                .or_default(),
        )
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .expect("registry poisoned")
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Snapshots every registered metric as wire samples, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let mut out = Vec::new();
        for (name, c) in self.counters.lock().expect("registry poisoned").iter() {
            out.push(MetricSample {
                name: (*name).to_string(),
                kind: MetricKind::Counter,
                value: c.get() as f64,
                hist: None,
            });
        }
        for (name, g) in self.gauges.lock().expect("registry poisoned").iter() {
            out.push(MetricSample {
                name: (*name).to_string(),
                kind: MetricKind::Gauge,
                value: g.get() as f64,
                hist: None,
            });
        }
        for (name, h) in self.histograms.lock().expect("registry poisoned").iter() {
            let hist = h.summary();
            out.push(MetricSample {
                name: (*name).to_string(),
                kind: MetricKind::Histogram,
                value: hist.map(|s| s.count).unwrap_or(0) as f64,
                hist,
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same cell.
        assert_eq!(r.counter("c").get(), 5);
        let g = r.gauge("g");
        g.set(7);
        g.add(-3);
        assert_eq!(r.gauge("g").get(), 4);
    }

    #[test]
    fn histogram_digest_and_local_merge() {
        let r = Registry::new();
        let h = r.histogram("h");
        for i in 1..=100 {
            h.observe(i as f64);
        }
        let mut local = Histogram::local_sketch();
        for i in 101..=200 {
            local.observe(i as f64);
        }
        h.merge_local(&mut local);
        assert!(local.is_empty(), "merge_local clears the local sketch");
        let s = h.summary().expect("non-empty");
        assert_eq!(s.count, 200);
        assert_eq!(s.max, 200.0);
        assert!((s.p50 - 100.0).abs() <= 200.0 * HISTOGRAM_EPS + 1.0);
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let r = Registry::new();
        r.counter("b_count").inc();
        r.gauge("a_gauge").set(2);
        r.histogram("c_hist").observe(1.0);
        r.histogram("d_empty");
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a_gauge", "b_count", "c_hist", "d_empty"]);
        assert_eq!(snap[0].kind, MetricKind::Gauge);
        assert_eq!(snap[1].kind, MetricKind::Counter);
        assert_eq!(snap[2].kind, MetricKind::Histogram);
        assert!(snap[2].hist.is_some());
        assert!(snap[3].hist.is_none(), "empty histogram has no digest");
        assert_eq!(snap[3].value, 0.0);
    }
}
