//! `dwrs-lint` — a workspace static-analysis pass for concurrency,
//! unsafe, and wire-protocol invariants.
//!
//! The repo grew its own lint because the invariants it cares about are
//! repo-specific and none of the stock tooling checks them: which lock
//! may be held while acquiring which other, which functions are on the
//! per-event hot path, which `u8` constants are wire-stable protocol
//! tags. The pass is token-level (hand-rolled lexer, no `syn` — the
//! build environment is registry-less) and runs as
//! `cargo run -p dwrs-lint -- --deny` locally and in CI.
//!
//! See `docs/CONCURRENCY.md` for the rule catalog and the declared lock
//! order, and `lint.toml` at the repo root for the configuration.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scope;

use std::path::{Path, PathBuf};

use config::Config;
use diag::{Finding, Report};
use lexer::{comments_near, lex, Source};
use scope::{fn_spans, FileCtx};

pub use config::ConfigError;
pub use rules::l005::{wire_tags_in, WireTag};

/// Collects the `.rs` files under the configured include roots, sorted
/// for deterministic output. Paths are repo-relative with `/` separators.
pub fn collect_files(root: &Path, cfg: &Config) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    for inc in &cfg.include {
        let dir = root.join(inc);
        if dir.is_dir() {
            walk(&dir, &mut out);
        }
    }
    let mut rel: Vec<(String, PathBuf)> = out
        .into_iter()
        .filter_map(|p| {
            let r = p
                .strip_prefix(root)
                .ok()?
                .to_string_lossy()
                .replace('\\', "/");
            if cfg.exclude.iter().any(|e| r.contains(e.as_str())) {
                return None;
            }
            Some((r, p))
        })
        .collect();
    rel.sort();
    rel
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Runs every rule over the workspace rooted at `root` and returns the
/// report, with inline and configured suppressions already applied.
pub fn run(root: &Path, cfg: &Config) -> Report {
    let files = collect_files(root, cfg);
    let sources: Vec<(String, String)> = files
        .iter()
        .filter_map(|(rel, path)| std::fs::read_to_string(path).ok().map(|s| (rel.clone(), s)))
        .collect();

    let mut raw: Vec<Finding> = Vec::new();
    let mut lexed: Vec<(String, Source)> = Vec::new();
    let lock_names: std::collections::BTreeSet<String> = cfg.lock_names.iter().cloned().collect();
    let mut edges = Vec::new();

    for (rel, text) in &sources {
        let src = lex(text);
        let fns = fn_spans(&src.toks);
        let ctx = FileCtx {
            path: rel,
            src: &src,
            fns: &fns,
        };
        rules::l001::check(&ctx, &mut raw);
        rules::l002::check(&ctx, &mut raw);
        edges.extend(rules::l003::scan_file(&ctx, &lock_names, &mut raw));
        rules::l004::check(&ctx, cfg, &mut raw);
        rules::l006::check(&ctx, &mut raw);
        lexed.push((rel.clone(), src));
    }
    rules::l003::check_workspace(cfg, &edges, &mut raw);
    rules::l005::check_workspace(
        cfg,
        &sources,
        &|doc| std::fs::read_to_string(root.join(doc)).ok(),
        &mut raw,
    );

    // Apply suppressions.
    let mut report = Report {
        files: sources.len(),
        ..Report::default()
    };
    for f in raw {
        let inline = lexed
            .iter()
            .find(|(rel, _)| *rel == f.file)
            .is_some_and(|(_, src)| inline_allowed(src, &f));
        let configured = cfg.allows.iter().any(|a| {
            a.code == f.code
                && f.file.ends_with(a.file.as_str())
                && a.line.is_none_or(|l| l == f.line)
                && a.contains.as_deref().is_none_or(|c| f.message.contains(c))
        });
        if inline || configured {
            report.allowed += 1;
        } else {
            report.findings.push(f);
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    report
}

/// Inline escape hatch: a comment near the finding containing
/// `lint:allow(CODE) -- reason`. The reason is mandatory — a bare
/// `lint:allow(L001)` does not suppress anything.
fn inline_allowed(src: &Source, f: &Finding) -> bool {
    let marker = format!("lint:allow({})", f.code);
    comments_near(src, f.line).iter().any(|c| {
        c.find(&marker).is_some_and(|at| {
            let after = &c[at + marker.len()..];
            let reason = after.trim_start().strip_prefix("--").unwrap_or("");
            !reason.trim().is_empty()
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_allow_requires_a_reason() {
        let f = Finding::new("L001", "x.rs", 2, "msg");
        let with = lex("// lint:allow(L001) -- FFI contract documented in mod docs\nlet a =\nunsafe { f() };\n");
        assert!(inline_allowed(&with, &f));
        let without = lex("// lint:allow(L001)\nlet a =\nunsafe { f() };\n");
        assert!(!inline_allowed(&without, &f));
        let wrong_code = lex("// lint:allow(L002) -- reason\nlet a =\nunsafe { f() };\n");
        assert!(!inline_allowed(&wrong_code, &f));
    }
}
