//! Function-span extraction over the token stream.
//!
//! Several rules need to know which `fn` a token belongs to (L002 groups
//! atomic operations by enclosing function; L003/L004 analyze one function
//! body at a time). A span is located by finding `fn <name>`, skipping the
//! signature (tracking parenthesis depth so closures and tuples in the
//! return type don't confuse it), and brace-matching the body.

use crate::lexer::{Source, Tok};

/// One `fn` item: its name and the token/line extent of its body.
#[derive(Clone, Debug)]
pub struct FnSpan {
    pub name: String,
    /// Token indices of the body's `{` and matching `}` (inclusive).
    pub body: (usize, usize),
    /// First and last line of the body.
    pub lines: (u32, u32),
}

impl FnSpan {
    /// True when token index `i` falls inside the body.
    pub fn contains(&self, i: usize) -> bool {
        i >= self.body.0 && i <= self.body.1
    }
}

/// Extracts every `fn` with a body, including nested ones.
pub fn fn_spans(toks: &[Tok]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].kind == crate::lexer::TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let mut j = i + 2;
            let mut paren = 0i32;
            let mut body_open = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') {
                    paren += 1;
                } else if t.is_punct(')') {
                    paren -= 1;
                } else if paren == 0 && t.is_punct('{') {
                    body_open = Some(j);
                    break;
                } else if paren == 0 && t.is_punct(';') {
                    break; // trait method / extern decl without a body
                }
                j += 1;
            }
            if let Some(open) = body_open {
                let mut depth = 0i32;
                let mut close = open;
                for (k, t) in toks.iter().enumerate().skip(open) {
                    if t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            close = k;
                            break;
                        }
                    }
                }
                out.push(FnSpan {
                    name,
                    body: (open, close),
                    lines: (toks[open].line, toks[close].line),
                });
            }
        }
        i += 1;
    }
    out
}

/// The innermost function whose body contains token index `i` (functions
/// nest; the innermost is the one with the smallest containing span).
pub fn enclosing_fn(spans: &[FnSpan], i: usize) -> Option<usize> {
    spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.contains(i))
        .min_by_key(|(_, s)| s.body.1 - s.body.0)
        .map(|(idx, _)| idx)
}

/// Shared per-file context handed to the rules.
pub struct FileCtx<'a> {
    /// Repo-relative path with `/` separators.
    pub path: &'a str,
    pub src: &'a Source,
    pub fns: &'a [FnSpan],
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_functions_and_nesting() {
        let src = lex(
            "fn outer(a: (u8, u8)) -> Result<(), ()> {\n  fn inner() { x(); }\n  inner();\n}\nfn sigonly();\n",
        );
        let spans = fn_spans(&src.toks);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        // The x() call token is inside `inner` (innermost).
        let xi = src.toks.iter().position(|t| t.is_ident("x")).unwrap();
        let e = enclosing_fn(&spans, xi).unwrap();
        assert_eq!(spans[e].name, "inner");
    }

    #[test]
    fn where_clauses_and_generics_do_not_confuse_body_start() {
        let src =
            lex("fn f<T: Iterator<Item = u8>>(t: T) -> impl Fn() -> u8 where T: Send { g() }");
        let spans = fn_spans(&src.toks);
        assert_eq!(spans.len(), 1);
        let gi = src.toks.iter().position(|t| t.is_ident("g")).unwrap();
        assert!(spans[0].contains(gi));
    }
}
