//! CLI entry point: `cargo run -p dwrs-lint -- [--deny] [--format json]`.
//!
//! Exit status: 0 when clean (or when findings exist but `--deny` was not
//! given — advisory mode), 1 when `--deny` and findings remain, 2 on
//! usage or configuration errors.

use std::path::PathBuf;
use std::process::ExitCode;

use dwrs_lint::config::Config;

const USAGE: &str = "usage: dwrs-lint [--root DIR] [--config FILE] [--deny] [--format text|json]";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config: Option<PathBuf> = None;
    let mut deny = false;
    let mut json = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root needs a value"),
            },
            "--config" => match args.next() {
                Some(v) => config = Some(PathBuf::from(v)),
                None => return usage_error("--config needs a value"),
            },
            "--deny" => deny = true,
            "--format" => match args.next().as_deref() {
                Some("text") => json = false,
                Some("json") => json = true,
                _ => return usage_error("--format must be text or json"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    // An explicitly named config must exist; only the implicit
    // `<root>/lint.toml` default may silently fall back to Config::default.
    let explicit = config.is_some();
    let config_path = config.unwrap_or_else(|| root.join("lint.toml"));
    let cfg = if config_path.is_file() {
        match Config::load(&config_path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("dwrs-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else if explicit {
        eprintln!(
            "dwrs-lint: config file not found: {}",
            config_path.display()
        );
        return ExitCode::from(2);
    } else {
        Config::default()
    };

    let report = dwrs_lint::run(&root, &cfg);
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if deny && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("dwrs-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
