//! `lint.toml` — the repo-specific invariant declarations.
//!
//! The environment is registry-less, so this module includes a small
//! hand-rolled parser for the TOML subset the config uses: `[table]` and
//! `[[array-of-table]]` headers, `key = value` with string / integer /
//! boolean / (possibly nested, possibly multi-line) array values, and `#`
//! comments. Unknown keys are ignored so the config can grow.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

// ------------------------------------------------------------ raw values

/// A parsed TOML value (subset).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    Array(Vec<Value>),
}

impl Value {
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_str_array(&self) -> Option<Vec<String>> {
        match self {
            Value::Array(items) => items
                .iter()
                .map(|v| v.as_str().map(str::to_string))
                .collect(),
            _ => None,
        }
    }
}

/// One table: its dotted header path and key/value pairs.
#[derive(Debug, Default)]
struct Table {
    path: String,
    keys: BTreeMap<String, Value>,
}

/// A configuration error with enough context to fix the file.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

fn parse_tables(text: &str) -> Result<Vec<Table>, ConfigError> {
    let mut tables: Vec<Table> = vec![Table::default()];
    let mut lines = text.lines().enumerate().peekable();
    while let Some((n, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let path = rest
                .strip_suffix("]]")
                .ok_or_else(|| ConfigError(format!("line {}: malformed [[header]]", n + 1)))?;
            tables.push(Table {
                path: path.trim().to_string(),
                keys: BTreeMap::new(),
            });
        } else if let Some(rest) = line.strip_prefix('[') {
            let path = rest
                .strip_suffix(']')
                .ok_or_else(|| ConfigError(format!("line {}: malformed [header]", n + 1)))?;
            tables.push(Table {
                path: path.trim().to_string(),
                keys: BTreeMap::new(),
            });
        } else if let Some((key, mut rhs)) = split_key_value(&line) {
            // Multi-line arrays: keep consuming lines until brackets balance.
            while bracket_balance(&rhs) > 0 {
                let Some((_, next)) = lines.next() else {
                    return Err(ConfigError(format!(
                        "line {}: unterminated array for key {key:?}",
                        n + 1
                    )));
                };
                rhs.push(' ');
                rhs.push_str(strip_comment(next).trim());
            }
            let value = parse_value(rhs.trim())
                .map_err(|e| ConfigError(format!("line {}: key {key:?}: {e}", n + 1)))?;
            tables
                .last_mut()
                .expect("tables never empty")
                .keys
                .insert(key, value);
        } else {
            return Err(ConfigError(format!(
                "line {}: cannot parse {line:?}",
                n + 1
            )));
        }
    }
    Ok(tables)
}

/// Strips a `#` comment, respecting `"`-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn split_key_value(line: &str) -> Option<(String, String)> {
    let eq = line.find('=')?;
    let key = line[..eq].trim();
    if key.is_empty() || key.contains(' ') {
        return None;
    }
    Some((key.to_string(), line[eq + 1..].trim().to_string()))
}

/// Net count of unclosed `[` outside strings.
fn bracket_balance(s: &str) -> i32 {
    let mut depth = 0;
    let mut in_str = false;
    let mut prev_backslash = false;
    for c in s.chars() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    depth
}

fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = rest.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some(other) => out.push(other),
                    None => return Err("dangling escape".into()),
                },
                '"' => return Ok(Value::Str(out)),
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    } else if s == "true" {
        Ok(Value::Bool(true))
    } else if s == "false" {
        Ok(Value::Bool(false))
    } else if s.starts_with('[') {
        let inner = s
            .strip_prefix('[')
            .and_then(|x| x.strip_suffix(']'))
            .ok_or("malformed array")?;
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(parse_value(part)?);
        }
        Ok(Value::Array(items))
    } else {
        s.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("cannot parse value {s:?}"))
    }
}

/// Splits on top-level commas (outside nested brackets and strings).
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut depth = 0;
    let mut in_str = false;
    let mut prev_backslash = false;
    for c in s.chars() {
        match c {
            '"' if !prev_backslash => {
                in_str = !in_str;
                cur.push(c);
            }
            '[' if !in_str => {
                depth += 1;
                cur.push(c);
            }
            ']' if !in_str => {
                depth -= 1;
                cur.push(c);
            }
            ',' if !in_str && depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

// ---------------------------------------------------------- typed config

/// A hot-path function declaration: the file (suffix match, `/` separators)
/// and the function name, written `path::fn_name` in the config.
#[derive(Clone, Debug)]
pub struct HotFn {
    pub file: String,
    pub func: String,
}

/// A wire-tag namespace: the files whose `TAG_*` constants form one tag
/// space (values must be unique within it), and the document that must
/// mention each tag name and byte.
#[derive(Clone, Debug)]
pub struct TagNamespace {
    pub name: String,
    pub files: Vec<String>,
    pub doc: String,
}

/// Trace-event catalog declaration for L005.
#[derive(Clone, Debug)]
pub struct TraceCatalog {
    pub file: String,
    pub enum_name: String,
    pub doc: String,
}

/// A configured suppression. `file` is a suffix match; at least one of
/// `line`/`contains` narrows it; `reason` is mandatory and non-empty.
#[derive(Clone, Debug)]
pub struct AllowRule {
    pub code: String,
    pub file: String,
    pub line: Option<u32>,
    pub contains: Option<String>,
    pub reason: String,
}

/// The fully-typed lint configuration.
#[derive(Debug)]
pub struct Config {
    /// Directories (relative to the root) to scan for `.rs` files.
    pub include: Vec<String>,
    /// Path substrings that exclude a file.
    pub exclude: Vec<String>,
    /// Declared lock set (every name that counts as a lock for L003).
    pub lock_names: Vec<String>,
    /// Declared acquisition chains: within a chain, an earlier lock may be
    /// held while acquiring a later one, never the reverse.
    pub lock_chains: Vec<Vec<String>>,
    /// Functions whose steady state must not allocate (L004).
    pub hot_functions: Vec<HotFn>,
    /// Allocation-shaped calls L004 flags (methods, `Path::fn`s, macros).
    pub alloc_catalog: Vec<String>,
    /// Wire-tag namespaces (L005).
    pub tag_namespaces: Vec<TagNamespace>,
    /// Trace-event catalog (L005).
    pub trace: Option<TraceCatalog>,
    /// Configured suppressions.
    pub allows: Vec<AllowRule>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            include: vec![
                "src".into(),
                "crates".into(),
                "tests".into(),
                "examples".into(),
            ],
            exclude: vec!["vendor/".into(), "/target/".into()],
            lock_names: Vec::new(),
            lock_chains: Vec::new(),
            hot_functions: Vec::new(),
            alloc_catalog: default_alloc_catalog(),
            tag_namespaces: Vec::new(),
            trace: None,
            allows: Vec::new(),
        }
    }
}

/// The default allocation-shaped call catalog for L004.
pub fn default_alloc_catalog() -> Vec<String> {
    [
        "Vec::new",
        "Vec::with_capacity",
        "String::new",
        "String::from",
        "String::with_capacity",
        "Box::new",
        "vec!",
        "format!",
        ".clone",
        ".to_vec",
        ".to_string",
        ".to_owned",
        ".collect",
    ]
    .into_iter()
    .map(str::to_string)
    .collect()
}

impl Config {
    /// Parses a config from TOML text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config::default();
        for table in parse_tables(text)? {
            match table.path.as_str() {
                "" => {}
                "scan" => {
                    if let Some(v) = table.keys.get("include").and_then(Value::as_str_array) {
                        cfg.include = v;
                    }
                    if let Some(v) = table.keys.get("exclude").and_then(Value::as_str_array) {
                        cfg.exclude = v;
                    }
                }
                "locks" => {
                    if let Some(v) = table.keys.get("names").and_then(Value::as_str_array) {
                        cfg.lock_names = v;
                    }
                    if let Some(Value::Array(chains)) = table.keys.get("chains") {
                        for chain in chains {
                            let links = chain.as_str_array().ok_or_else(|| {
                                ConfigError("locks.chains must be arrays of strings".into())
                            })?;
                            cfg.lock_chains.push(links);
                        }
                    }
                }
                "hotpath" => {
                    if let Some(v) = table.keys.get("functions").and_then(Value::as_str_array) {
                        for entry in v {
                            let (file, func) = entry.rsplit_once("::").ok_or_else(|| {
                                ConfigError(format!(
                                    "hotpath function {entry:?} must be written path::fn_name"
                                ))
                            })?;
                            cfg.hot_functions.push(HotFn {
                                file: file.to_string(),
                                func: func.to_string(),
                            });
                        }
                    }
                    if let Some(v) = table.keys.get("alloc_calls").and_then(Value::as_str_array) {
                        cfg.alloc_catalog = v;
                    }
                }
                "tags.trace" => {
                    cfg.trace = Some(TraceCatalog {
                        file: required_str(&table, "file")?,
                        enum_name: table
                            .keys
                            .get("enum")
                            .and_then(Value::as_str)
                            .unwrap_or("TraceKind")
                            .to_string(),
                        doc: required_str(&table, "doc")?,
                    });
                }
                "tags.namespace" => {
                    cfg.tag_namespaces.push(TagNamespace {
                        name: required_str(&table, "name")?,
                        files: table
                            .keys
                            .get("files")
                            .and_then(Value::as_str_array)
                            .ok_or_else(|| {
                                ConfigError("tags.namespace needs a files array".into())
                            })?,
                        doc: required_str(&table, "doc")?,
                    });
                }
                "allow" => {
                    let rule = AllowRule {
                        code: required_str(&table, "code")?,
                        file: required_str(&table, "file")?,
                        line: table.keys.get("line").and_then(|v| match v {
                            Value::Int(n) => u32::try_from(*n).ok(),
                            _ => None,
                        }),
                        contains: table
                            .keys
                            .get("contains")
                            .and_then(Value::as_str)
                            .map(str::to_string),
                        reason: required_str(&table, "reason")?,
                    };
                    if rule.reason.trim().is_empty() {
                        return Err(ConfigError(format!(
                            "allow rule for {} in {} has an empty reason — every \
                             suppression must say why",
                            rule.code, rule.file
                        )));
                    }
                    cfg.allows.push(rule);
                }
                other => {
                    return Err(ConfigError(format!("unknown table [{other}]")));
                }
            }
        }
        Ok(cfg)
    }

    /// Loads and parses `path`.
    pub fn load(path: &Path) -> Result<Config, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError(format!("cannot read {}: {e}", path.display())))?;
        Config::parse(&text)
    }
}

fn required_str(table: &Table, key: &str) -> Result<String, ConfigError> {
    table
        .keys
        .get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| ConfigError(format!("[{}] needs a string key {key:?}", table.path)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let cfg = Config::parse(
            r#"
[scan]
include = ["src", "crates"]  # trailing comment
exclude = ["vendor/"]

[locks]
names = ["streams", "drained"]
chains = [
    ["streams", "drained"],
]

[hotpath]
functions = ["crates/runtime/src/epoll.rs::site_worker"]

[tags.trace]
file = "crates/telemetry/src/trace.rs"
doc = "docs/DAEMON.md"

[[tags.namespace]]
name = "ctrl"
files = ["crates/core/src/ctrl.rs"]
doc = "docs/DAEMON.md"

[[allow]]
code = "L004"
file = "crates/runtime/src/epoll.rs"
line = 10
reason = "startup allocation, not steady state"
"#,
        )
        .unwrap();
        assert_eq!(cfg.include, vec!["src", "crates"]);
        assert_eq!(cfg.lock_chains, vec![vec!["streams", "drained"]]);
        assert_eq!(cfg.hot_functions[0].func, "site_worker");
        assert_eq!(cfg.hot_functions[0].file, "crates/runtime/src/epoll.rs");
        assert_eq!(cfg.tag_namespaces[0].name, "ctrl");
        assert_eq!(cfg.allows[0].line, Some(10));
        assert!(cfg.trace.is_some());
    }

    #[test]
    fn empty_allow_reason_is_rejected() {
        let err = Config::parse("[[allow]]\ncode = \"L001\"\nfile = \"x.rs\"\nreason = \"  \"\n")
            .unwrap_err();
        assert!(err.0.contains("empty reason"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[scan]\ninclude = [\"a#b\"]\n").unwrap();
        assert_eq!(cfg.include, vec!["a#b"]);
    }
}
