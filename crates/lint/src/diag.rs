//! Findings and report rendering (human text and JSON).

/// One diagnostic: a stable rule code, a `file:line` anchor, and a
/// human-readable message.
#[derive(Clone, Debug)]
pub struct Finding {
    pub code: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl Finding {
    pub fn new(code: &'static str, file: &str, line: u32, message: impl Into<String>) -> Self {
        Finding {
            code,
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }
}

/// The result of one lint pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived the allowlist, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an inline or configured allow.
    pub allowed: usize,
    /// Files scanned.
    pub files: usize,
}

impl Report {
    /// `path:line: [CODE] message` lines plus a one-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file, f.line, f.code, f.message
            ));
        }
        out.push_str(&format!(
            "dwrs-lint: {} finding(s), {} allowed, {} file(s) scanned\n",
            self.findings.len(),
            self.allowed,
            self.files
        ));
        out
    }

    /// A machine-readable findings artifact for CI.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"code\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                f.code,
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str(&format!(
            "],\n  \"allowed\": {},\n  \"files\": {}\n}}\n",
            self.allowed, self.files
        ));
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut r = Report {
            findings: vec![Finding::new(
                "L001",
                "a/b.rs",
                3,
                "needs \"SAFETY\"\ncomment",
            )],
            allowed: 1,
            files: 2,
        };
        let j = r.render_json();
        assert!(j.contains("\\\"SAFETY\\\""));
        assert!(j.contains("\\n"));
        r.findings.clear();
        let empty = r.render_json();
        assert!(empty.contains("\"findings\": []"));
    }
}
