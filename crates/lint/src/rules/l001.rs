//! L001 — every `unsafe` block, function, impl, or trait must carry a
//! `// SAFETY:` comment stating the invariant it relies on.
//!
//! The comment may trail the line or sit in the contiguous comment block
//! directly above the statement (attribute lines and statement
//! continuations are walked over; the previous statement ends the search).
//! This is the same contract `clippy::undocumented_unsafe_blocks` checks
//! for blocks — CI runs that lint as an independent cross-check — but L001
//! also covers `unsafe fn` / `unsafe impl` / `unsafe trait`, and fails
//! closed in this repo's own toolchain-independent pass.

use crate::diag::Finding;
use crate::lexer::marker_near;
use crate::scope::FileCtx;

pub const CODE: &str = "L001";
const MARKER: &str = "SAFETY:";

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.src.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let what = match toks.get(i + 1) {
            Some(n) if n.is_punct('{') => "unsafe block",
            Some(n) if n.is_ident("fn") => "unsafe fn",
            Some(n) if n.is_ident("impl") => "unsafe impl",
            Some(n) if n.is_ident("trait") => "unsafe trait",
            Some(n) if n.is_ident("extern") => "unsafe extern block",
            _ => "unsafe",
        };
        if !marker_near(ctx.src, t.line, MARKER) {
            out.push(Finding::new(
                CODE,
                ctx.path,
                t.line,
                format!("{what} without a `// SAFETY:` comment stating the invariant it relies on"),
            ));
        }
    }
}
