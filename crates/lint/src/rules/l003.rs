//! L003 — nested `Mutex`/`RwLock` guard scopes must respect the lock
//! partial order declared in `lint.toml`, and the combined lock graph
//! (declared chains plus every observed nesting) must be acyclic.
//!
//! The extraction is token-level: within each function, an acquisition is
//! `NAME.lock(` / `NAME.read(` / `NAME.write(` where `NAME` is in the
//! declared lock set. How long the guard is considered held depends on how
//! the acquisition is bound:
//!
//! * `let g = name.lock().unwrap();` — held until the enclosing block
//!   closes or `drop(g)` runs;
//! * `for x in name.lock()...` / `if let`/`while let`/`match` headers —
//!   held while the following block is open (Rust keeps the temporary
//!   alive for the whole body);
//! * a chained temporary (`name.lock().unwrap().len()`) — released at the
//!   end of the statement.
//!
//! When lock B is acquired while A is held, the edge A→B must be implied
//! by the declared chains. Acquiring against the declared order, acquiring
//! the same lock twice (self-deadlock with `std::sync::Mutex`), nesting a
//! pair the config never declared, and any cycle in the combined graph are
//! all findings.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::TokKind;
use crate::scope::FileCtx;

pub const CODE: &str = "L003";

/// One observed "A held while acquiring B".
#[derive(Clone, Debug)]
pub struct Edge {
    pub held: String,
    pub acquired: String,
    pub file: String,
    pub line: u32,
}

#[derive(Clone, Copy, PartialEq)]
enum Bind {
    /// `let`-bound guard: held until its block closes (release_depth).
    Scoped,
    /// Control-header temporary (`for`/`if`/`while`/`match`): armed until
    /// the body block opens, then held while it is open.
    ControlPending,
    Control,
    /// Plain statement temporary: released at the next `;`.
    Temp,
}

struct Held {
    lock: String,
    bind: Bind,
    /// Release when brace depth drops below this.
    release_depth: i32,
    binding: Option<String>,
}

/// Scans one file, returning observed nesting edges. Same-lock recursive
/// acquisition is reported immediately as a finding.
pub fn scan_file(ctx: &FileCtx<'_>, locks: &BTreeSet<String>, out: &mut Vec<Finding>) -> Vec<Edge> {
    let mut edges = Vec::new();
    for span in ctx.fns {
        // Bodies of fns nested inside this one are walked by their own
        // span; skip them here so a guard held in the outer fn is not
        // charged against acquisitions in an inner fn *definition*.
        let nested: Vec<(usize, usize)> = ctx
            .fns
            .iter()
            .filter(|s| s.body.0 > span.body.0 && s.body.1 < span.body.1)
            .map(|s| s.body)
            .collect();
        scan_body(ctx, span.body, &nested, locks, &mut edges, out);
    }
    edges
}

fn scan_body(
    ctx: &FileCtx<'_>,
    (open, close): (usize, usize),
    nested: &[(usize, usize)],
    locks: &BTreeSet<String>,
    edges: &mut Vec<Edge>,
    out: &mut Vec<Finding>,
) {
    let toks = &ctx.src.toks;
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    // Statement context, reset at `;` / `{` / `}`.
    let mut stmt_let: Option<String> = None;
    let mut stmt_control = false;
    let mut i = open;
    while i <= close && i < toks.len() {
        if let Some(&(_, nend)) = nested.iter().find(|(ns, _)| *ns == i) {
            i = nend + 1;
            continue;
        }
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            for h in held.iter_mut() {
                if h.bind == Bind::ControlPending {
                    h.bind = Bind::Control;
                    h.release_depth = depth;
                }
            }
            stmt_let = None;
            stmt_control = false;
        } else if t.is_punct('}') {
            depth -= 1;
            held.retain(|h| h.release_depth <= depth);
            stmt_let = None;
            stmt_control = false;
        } else if t.is_punct(';') {
            // A temp guard dies at the end of its statement: any `;` at or
            // above its acquisition depth (a deeper `;` is inside a nested
            // closure/block within the same statement).
            held.retain(|h| h.bind != Bind::Temp || depth > h.release_depth);
            stmt_let = None;
            stmt_control = false;
        } else if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "let" => {
                    if let Some(n) = toks.get(i + 1) {
                        if n.kind == TokKind::Ident {
                            // `let mut g` / `let g`
                            let name = if n.text == "mut" {
                                toks.get(i + 2).map(|m| m.text.clone())
                            } else {
                                Some(n.text.clone())
                            };
                            stmt_let = name;
                        }
                    }
                }
                "for" | "while" | "if" | "match" => stmt_control = true,
                // `drop(g)` releases the named guard early.
                "drop"
                    if toks.get(i + 1).is_some_and(|p| p.is_punct('('))
                        && toks.get(i + 3).is_some_and(|p| p.is_punct(')')) =>
                {
                    if let Some(arg) = toks.get(i + 2) {
                        held.retain(|h| h.binding.as_deref() != Some(arg.text.as_str()));
                    }
                }
                name if locks.contains(name) && is_acquisition(toks, i) => {
                    let line = t.line;
                    for h in &held {
                        if h.lock == *name {
                            out.push(Finding::new(
                                CODE,
                                ctx.path,
                                line,
                                format!(
                                    "lock `{name}` acquired while already held \
                                     (self-deadlock with std::sync primitives)"
                                ),
                            ));
                        } else {
                            edges.push(Edge {
                                held: h.lock.clone(),
                                acquired: name.to_string(),
                                file: ctx.path.to_string(),
                                line,
                            });
                        }
                    }
                    let (bind, after) = classify(toks, i, stmt_let.is_some(), stmt_control);
                    held.push(Held {
                        lock: name.to_string(),
                        bind,
                        release_depth: depth,
                        binding: stmt_let.clone(),
                    });
                    i = after;
                    continue;
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Is `toks[i]` the receiver of `.lock(` / `.read(` / `.write(`?
fn is_acquisition(toks: &[crate::lexer::Tok], i: usize) -> bool {
    toks.get(i + 1).is_some_and(|d| d.is_punct('.'))
        && toks.get(i + 2).is_some_and(|m| {
            m.kind == TokKind::Ident && matches!(m.text.as_str(), "lock" | "read" | "write")
        })
        && toks.get(i + 3).is_some_and(|p| p.is_punct('('))
}

/// Decides how the fresh guard is bound and returns the token index after
/// the acquisition chain (`.lock().unwrap()` / `.expect(..)` skipped).
fn classify(
    toks: &[crate::lexer::Tok],
    i: usize,
    has_let: bool,
    in_control: bool,
) -> (Bind, usize) {
    // Skip past `.lock(...)` and any chained `.unwrap()` / `.expect(...)`.
    let mut j = i + 3; // at '('
    j = skip_parens(toks, j);
    loop {
        if toks.get(j).is_some_and(|d| d.is_punct('.'))
            && toks
                .get(j + 1)
                .is_some_and(|m| m.is_ident("unwrap") || m.is_ident("expect"))
            && toks.get(j + 2).is_some_and(|p| p.is_punct('('))
        {
            j = skip_parens(toks, j + 2);
        } else {
            break;
        }
    }
    // A further chained method extracts a value — the guard is a
    // temporary no matter how the statement binds the result. Control
    // headers are the exception: `for x in guard.iter()` keeps the
    // temporary alive for the whole body, chained or not.
    let chained = toks.get(j).is_some_and(|d| d.is_punct('.'));
    let bind = if in_control {
        Bind::ControlPending
    } else if chained {
        Bind::Temp
    } else if has_let {
        Bind::Scoped
    } else {
        Bind::Temp
    };
    (bind, j)
}

/// Returns the index just past the `)` matching the `(` at `j`.
fn skip_parens(toks: &[crate::lexer::Tok], j: usize) -> usize {
    let mut depth = 0i32;
    let mut k = j;
    while k < toks.len() {
        if toks[k].is_punct('(') {
            depth += 1;
        } else if toks[k].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    k
}

/// Workspace pass: validates observed edges against the declared chains
/// and checks the combined graph for cycles.
pub fn check_workspace(cfg: &Config, edges: &[Edge], out: &mut Vec<Finding>) {
    // Declared edges: consecutive links of every chain.
    let mut declared: BTreeSet<(String, String)> = BTreeSet::new();
    for chain in &cfg.lock_chains {
        for pair in chain.windows(2) {
            declared.insert((pair[0].clone(), pair[1].clone()));
        }
    }
    let reach = |from: &str, to: &str| -> bool {
        // BFS over declared edges.
        let mut seen = BTreeSet::new();
        let mut queue = vec![from.to_string()];
        while let Some(n) = queue.pop() {
            for (a, b) in &declared {
                if *a == n && seen.insert(b.clone()) {
                    if b == to {
                        return true;
                    }
                    queue.push(b.clone());
                }
            }
        }
        false
    };

    let mut combined: BTreeSet<(String, String)> = declared.clone();
    for e in edges {
        combined.insert((e.held.clone(), e.acquired.clone()));
        if reach(&e.held, &e.acquired) {
            continue;
        }
        if reach(&e.acquired, &e.held) {
            out.push(Finding::new(
                CODE,
                &e.file,
                e.line,
                format!(
                    "lock order violation: `{}` acquired while holding `{}`, but the \
                     declared order is `{}` before `{}`",
                    e.acquired, e.held, e.acquired, e.held
                ),
            ));
        } else {
            out.push(Finding::new(
                CODE,
                &e.file,
                e.line,
                format!(
                    "undeclared lock nesting: `{}` acquired while holding `{}` — add the \
                     pair to a [locks] chain in lint.toml or restructure",
                    e.acquired, e.held
                ),
            ));
        }
    }

    // Cycle detection over the combined graph (declared + observed).
    if let Some(cycle) = find_cycle(&combined) {
        out.push(Finding::new(
            CODE,
            "lint.toml",
            0,
            format!("lock graph contains a cycle: {}", cycle.join(" -> ")),
        ));
    }
}

/// Finds one cycle in the directed graph, if any, as a node path.
fn find_cycle(edges: &BTreeSet<(String, String)>) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: BTreeMap<&str, Mark> = BTreeMap::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();

    fn visit<'a>(
        n: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        marks.insert(n, Mark::Grey);
        stack.push(n);
        for next in adj.get(n).into_iter().flatten() {
            match marks.get(next).copied().unwrap_or(Mark::White) {
                Mark::Grey => {
                    let at = stack.iter().position(|s| s == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[at..].iter().map(|s| s.to_string()).collect();
                    cycle.push(next.to_string());
                    return Some(cycle);
                }
                Mark::White => {
                    if let Some(c) = visit(next, adj, marks, stack) {
                        return Some(c);
                    }
                }
                Mark::Black => {}
            }
        }
        stack.pop();
        marks.insert(n, Mark::Black);
        None
    }

    for n in nodes {
        if marks.get(n).copied().unwrap_or(Mark::White) == Mark::White {
            let mut stack = Vec::new();
            if let Some(c) = visit(n, &adj, &mut marks, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}
