//! The rule catalog. Each rule has a stable code used in diagnostics and
//! in `lint:allow(...)` / `[[allow]]` suppressions:
//!
//! | code | invariant |
//! |---|---|
//! | L001 | `unsafe` needs a `// SAFETY:` comment |
//! | L002 | SeqCst/Relaxed on cross-function atomic flags needs `// ordering:` |
//! | L003 | nested lock guards follow the declared partial order, no cycles |
//! | L004 | declared hot-path functions do not allocate in steady state |
//! | L005 | wire tags and trace codes unique and documented |
//! | L006 | packed reprs are arch-gated and size-asserted |

pub mod l001;
pub mod l002;
pub mod l003;
pub mod l004;
pub mod l005;
pub mod l006;
