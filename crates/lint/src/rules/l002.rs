//! L002 — cross-thread atomic flags used with `Ordering::SeqCst` or
//! `Ordering::Relaxed` must justify the choice with an `// ordering:`
//! comment.
//!
//! Rationale (the PR 9 waker-flag bug class): `Relaxed` on a flag that
//! coordinates two threads is where lost-wakeup races hide, and `SeqCst`
//! is often a red flag that nobody worked out the real requirement.
//! `Acquire`/`Release`/`AcqRel` are the presumed-correct defaults for
//! message-passing flags and are not flagged.
//!
//! Scope: an atomic receiver (the field/static name before `.load(..)` /
//! `.store(..)` / `.swap(..)` / `fetch_*` / `compare_exchange*`) counts as
//! a *cross-thread flag* when its operations span more than one function
//! in the file and at least one of them is a store. Single-function
//! atomics (e.g. a test's local stop flag) are exempt.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Finding;
use crate::lexer::{marker_near, TokKind};
use crate::scope::{enclosing_fn, FileCtx};

pub const CODE: &str = "L002";
const MARKER: &str = "ordering:";

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

struct AtomicOp {
    recv: String,
    /// Enclosing fn index, or `usize::MAX` for item-level code.
    func: usize,
    line: u32,
    is_store: bool,
    /// Orderings named in the call (`SeqCst`, `Relaxed`, ...).
    orderings: Vec<String>,
}

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.src.toks;
    let mut ops: Vec<AtomicOp> = Vec::new();
    let mut i = 0;
    while i + 3 < toks.len() {
        // Pattern: Ident '.' method '(' ... 'Ordering' '::' X ... ')'
        let ok = toks[i].kind == TokKind::Ident
            && toks[i + 1].is_punct('.')
            && toks[i + 2].kind == TokKind::Ident
            && ATOMIC_METHODS.contains(&toks[i + 2].text.as_str())
            && toks[i + 3].is_punct('(');
        if !ok {
            i += 1;
            continue;
        }
        // Scan the argument list for Ordering::X mentions.
        let mut depth = 0i32;
        let mut j = i + 3;
        let mut orderings = Vec::new();
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("Ordering")
                && toks.get(j + 1).is_some_and(|c| c.is_punct(':'))
                && toks.get(j + 2).is_some_and(|c| c.is_punct(':'))
                && toks.get(j + 3).is_some_and(|o| o.kind == TokKind::Ident)
            {
                orderings.push(toks[j + 3].text.clone());
                j += 3;
            }
            j += 1;
        }
        if !orderings.is_empty() {
            // A real atomic op always names an Ordering; `Vec::swap(a, b)`
            // and friends never do, which is what filters them out.
            ops.push(AtomicOp {
                recv: toks[i].text.clone(),
                func: enclosing_fn(ctx.fns, i).unwrap_or(usize::MAX),
                line: toks[i].line,
                is_store: toks[i + 2].text != "load",
                orderings,
            });
            i = j;
        }
        i += 1;
    }

    // Group by receiver name; find cross-function flags with stores.
    let mut by_recv: BTreeMap<&str, Vec<&AtomicOp>> = BTreeMap::new();
    for op in &ops {
        by_recv.entry(op.recv.as_str()).or_default().push(op);
    }
    for (recv, sites) in by_recv {
        let funcs: BTreeSet<usize> = sites.iter().map(|s| s.func).collect();
        let has_store = sites.iter().any(|s| s.is_store);
        if funcs.len() < 2 || !has_store {
            continue;
        }
        for site in sites {
            let loose: Vec<&str> = site
                .orderings
                .iter()
                .filter(|o| *o == "SeqCst" || *o == "Relaxed")
                .map(String::as_str)
                .collect();
            if loose.is_empty() {
                continue;
            }
            if !marker_near(ctx.src, site.line, MARKER) {
                out.push(Finding::new(
                    CODE,
                    ctx.path,
                    site.line,
                    format!(
                        "atomic `{recv}` is a cross-function flag; Ordering::{} here \
                         needs an `// ordering:` justification comment",
                        loose.join("/")
                    ),
                ));
            }
        }
    }
}
