//! L005 — wire-protocol tag constants and trace-event codes must be
//! unique and documented.
//!
//! `lint.toml` declares tag *namespaces* (`[[tags.namespace]]`): the files
//! whose `TAG_*` constants form one tag space. Within a namespace every
//! tag byte must be unique — the wire format dispatches on it. Across
//! namespaces, values may legitimately collide (the protocols are layered:
//! a swor-wire byte never appears where a tcp frame tag is expected) but
//! *names* must stay globally unique so a grep for `TAG_X` is unambiguous.
//! Every tag must also appear, name and byte, in the namespace's declared
//! document.
//!
//! `[tags.trace]` declares the trace-event enum (`TraceKind`): its `u8`
//! codes must be unique, every variant needs both a code and a wire name,
//! and the declared document must carry a `| code | `name` |` catalog row
//! per variant.

use std::collections::BTreeMap;

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::{lex, TokKind};

pub const CODE: &str = "L005";

/// One `const TAG_X: u8 = 0xNN;` item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireTag {
    pub name: String,
    pub value: u8,
    /// The literal token text (`0x40`), for doc matching.
    pub text: String,
    pub line: u32,
}

/// Extracts `TAG_*` byte constants from Rust source. Public so the repo's
/// documentation tests can assert against the same parse the lint uses.
pub fn wire_tags_in(source: &str) -> Vec<WireTag> {
    let src = lex(source);
    let toks = &src.toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 5 < toks.len() {
        // `const TAG_X : u8 = <num> ;` (visibility tokens precede `const`
        // and are simply not matched here).
        let ok = toks[i].is_ident("const")
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 1].text.starts_with("TAG_")
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("u8")
            && toks[i + 4].is_punct('=')
            && toks[i + 5].kind == TokKind::Num;
        if ok {
            if let Some(value) = parse_u8(&toks[i + 5].text) {
                out.push(WireTag {
                    name: toks[i + 1].text.clone(),
                    value,
                    text: toks[i + 5].text.clone(),
                    line: toks[i + 1].line,
                });
            }
            i += 6;
        } else {
            i += 1;
        }
    }
    out
}

fn parse_u8(text: &str) -> Option<u8> {
    let t = text.replace('_', "");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u8::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// One `TraceKind` variant with its wire code and/or name, as recovered
/// from the `as_u8` / `name` match arms.
#[derive(Debug, Default)]
struct TraceVariant {
    code: Option<(u8, u32)>,
    name: Option<(String, u32)>,
}

/// Extracts variant → (code, name) from the enum's match arms:
/// `TraceKind::X => 7` and `TraceKind::X => "sync"`.
fn trace_variants(source: &str, enum_name: &str) -> BTreeMap<String, TraceVariant> {
    let src = lex(source);
    let toks = &src.toks;
    let mut out: BTreeMap<String, TraceVariant> = BTreeMap::new();
    let mut i = 0;
    while i + 5 < toks.len() {
        let ok = toks[i].is_ident(enum_name)
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == TokKind::Ident
            && toks[i + 4].is_punct('=')
            && toks[i + 5].is_punct('>');
        if ok {
            let variant = toks[i + 3].text.clone();
            let line = toks[i + 3].line;
            let entry = out.entry(variant).or_default();
            match toks.get(i + 6) {
                Some(t) if t.kind == TokKind::Num => {
                    if let Some(v) = parse_u8(&t.text) {
                        entry.code.get_or_insert((v, line));
                    }
                }
                Some(t) if t.kind == TokKind::Str => {
                    let name = t.text.trim_matches('"').to_string();
                    entry.name.get_or_insert((name, line));
                }
                _ => {}
            }
            i += 6;
        } else {
            i += 1;
        }
    }
    out
}

/// `files` holds every scanned file as `(workspace-relative path, source)`.
/// `read_doc` resolves a doc path declared in the config to its text.
pub fn check_workspace(
    cfg: &Config,
    files: &[(String, String)],
    read_doc: &dyn Fn(&str) -> Option<String>,
    out: &mut Vec<Finding>,
) {
    // Global name registry: TAG names must be unique across namespaces.
    let mut names_seen: BTreeMap<String, (String, u32)> = BTreeMap::new();

    for ns in &cfg.tag_namespaces {
        let doc = read_doc(&ns.doc);
        if doc.is_none() {
            out.push(Finding::new(
                CODE,
                &ns.doc,
                0,
                format!(
                    "namespace `{}` declares doc `{}` but it is unreadable",
                    ns.name, ns.doc
                ),
            ));
        }
        let mut values_seen: BTreeMap<u8, (String, String, u32)> = BTreeMap::new();
        for decl in &ns.files {
            let Some((path, source)) = files.iter().find(|(p, _)| p.ends_with(decl.as_str()))
            else {
                out.push(Finding::new(
                    CODE,
                    decl,
                    0,
                    format!(
                        "namespace `{}` lists file `{decl}` but it was not scanned",
                        ns.name
                    ),
                ));
                continue;
            };
            for tag in wire_tags_in(source) {
                if let Some((other, opath, oline)) = values_seen.get(&tag.value) {
                    out.push(Finding::new(
                        CODE,
                        path,
                        tag.line,
                        format!(
                            "tag byte 0x{:02x} of `{}` collides with `{other}` \
                             ({opath}:{oline}) in namespace `{}`",
                            tag.value, tag.name, ns.name
                        ),
                    ));
                } else {
                    values_seen.insert(tag.value, (tag.name.clone(), path.clone(), tag.line));
                }
                if let Some((opath, oline)) = names_seen.get(&tag.name) {
                    out.push(Finding::new(
                        CODE,
                        path,
                        tag.line,
                        format!(
                            "tag name `{}` already defined at {opath}:{oline} — wire-tag \
                             names must be globally unique",
                            tag.name
                        ),
                    ));
                } else {
                    names_seen.insert(tag.name.clone(), (path.clone(), tag.line));
                }
                if let Some(doc) = &doc {
                    let documented = doc.contains(&tag.name) && doc.contains(&tag.text);
                    if !documented {
                        out.push(Finding::new(
                            CODE,
                            path,
                            tag.line,
                            format!(
                                "tag `{}` = `{}` is not documented in {} (both the name \
                                 and the byte must appear)",
                                tag.name, tag.text, ns.doc
                            ),
                        ));
                    }
                }
            }
        }
    }

    // Trace-event catalog.
    if let Some(trace) = &cfg.trace {
        let Some((path, source)) = files.iter().find(|(p, _)| p.ends_with(trace.file.as_str()))
        else {
            out.push(Finding::new(
                CODE,
                &trace.file,
                0,
                format!("[tags.trace] file `{}` was not scanned", trace.file),
            ));
            return;
        };
        let doc = read_doc(&trace.doc);
        if doc.is_none() {
            out.push(Finding::new(
                CODE,
                &trace.doc,
                0,
                format!("[tags.trace] doc `{}` is unreadable", trace.doc),
            ));
        }
        let variants = trace_variants(source, &trace.enum_name);
        if variants.is_empty() {
            out.push(Finding::new(
                CODE,
                path,
                0,
                format!("no `{}::Variant => ...` arms found", trace.enum_name),
            ));
        }
        let mut codes_seen: BTreeMap<u8, (String, u32)> = BTreeMap::new();
        for (variant, info) in &variants {
            let Some((code, cline)) = info.code else {
                out.push(Finding::new(
                    CODE,
                    path,
                    info.name.as_ref().map_or(0, |(_, l)| *l),
                    format!(
                        "{}::{variant} has a wire name but no u8 code arm",
                        trace.enum_name
                    ),
                ));
                continue;
            };
            if let Some((other, oline)) = codes_seen.get(&code) {
                out.push(Finding::new(
                    CODE,
                    path,
                    cline,
                    format!(
                        "trace code {code} of {}::{variant} collides with ::{other} \
                         (line {oline})",
                        trace.enum_name
                    ),
                ));
            } else {
                codes_seen.insert(code, (variant.clone(), cline));
            }
            let Some((name, _)) = &info.name else {
                out.push(Finding::new(
                    CODE,
                    path,
                    cline,
                    format!(
                        "{}::{variant} has a code but no wire-name arm",
                        trace.enum_name
                    ),
                ));
                continue;
            };
            if let Some(doc) = &doc {
                let row = format!("| {code} | `{name}` |");
                if !doc.contains(&row) {
                    out.push(Finding::new(
                        CODE,
                        path,
                        cline,
                        format!(
                            "trace event {code} `{name}` has no catalog row \
                             `{row}` in {}",
                            trace.doc
                        ),
                    ));
                }
            }
        }
    }
}
