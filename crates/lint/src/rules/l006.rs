//! L006 — `repr(C, packed)` must be arch-gated and size-asserted.
//!
//! Packed layout is almost always mirroring a kernel or wire ABI, and
//! those ABIs differ per architecture (`struct epoll_event` is packed on
//! x86-64 only). A bare `#[repr(C, packed)]` silently compiles to the
//! wrong layout on the other arches, so this rule requires *both*:
//!
//! * the packed repr is applied through `#[cfg_attr(target_..., ...)]`
//!   so each architecture states its layout explicitly, and
//! * the file carries a compile-time size assertion
//!   (`assert!(size_of::<T>() == ...)`) so a new target with a third
//!   layout fails the build instead of corrupting memory at runtime.
//!
//! Deliberately strict: a struct that really is packed everywhere still
//! needs the size assert, and can suppress the gate half with a
//! justified `[[allow]]` in lint.toml.

use crate::diag::Finding;
use crate::lexer::{Tok, TokKind};
use crate::scope::FileCtx;

pub const CODE: &str = "L006";

pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.src.toks;
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(toks[i].is_punct('#') && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let close = matching_bracket(toks, i + 1);
        let attr = &toks[i + 1..close.min(toks.len())];
        let is_packed_repr = contains_ident(attr, "repr") && contains_ident(attr, "packed");
        if is_packed_repr {
            let line = toks[i].line;
            let gated = contains_ident(attr, "cfg_attr")
                && attr
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && t.text.starts_with("target_"));
            let name = item_name_after(toks, close);
            if !gated {
                out.push(Finding::new(
                    CODE,
                    ctx.path,
                    line,
                    format!(
                        "packed repr on `{}` is not cfg-gated per architecture — write it \
                         as #[cfg_attr(target_..., repr(C, packed))] with an explicit \
                         layout for the other arches",
                        name.as_deref().unwrap_or("<item>")
                    ),
                ));
            }
            let asserted = name.as_deref().is_some_and(|n| has_size_assert(toks, n));
            if !asserted {
                out.push(Finding::new(
                    CODE,
                    ctx.path,
                    line,
                    format!(
                        "packed repr on `{}` has no compile-time size assertion — add a \
                         `const _: () = assert!(size_of::<{}>() == ...)` in this file",
                        name.as_deref().unwrap_or("<item>"),
                        name.as_deref().unwrap_or("T")
                    ),
                ));
            }
        }
        i = close + 1;
    }
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < toks.len() {
        if toks[k].is_punct('[') {
            depth += 1;
        } else if toks[k].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    k
}

fn contains_ident(toks: &[Tok], name: &str) -> bool {
    toks.iter().any(|t| t.is_ident(name))
}

/// The struct/enum/union name following the attribute at `close`,
/// skipping further attributes, visibility, and derives.
fn item_name_after(toks: &[Tok], close: usize) -> Option<String> {
    let mut k = close + 1;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('#') && toks.get(k + 1).is_some_and(|b| b.is_punct('[')) {
            k = matching_bracket(toks, k + 1) + 1;
            continue;
        }
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "struct" | "enum" | "union") {
            return toks.get(k + 1).map(|n| n.text.clone());
        }
        // pub / pub(crate) / etc.
        if t.kind == TokKind::Ident || t.is_punct('(') || t.is_punct(')') {
            k += 1;
            continue;
        }
        return None;
    }
    None
}

/// Does the file assert on `size_of::<name>()` anywhere?
fn has_size_assert(toks: &[Tok], name: &str) -> bool {
    let mut saw_assert = false;
    let mut saw_size_of = false;
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text.starts_with("assert") {
            saw_assert = true;
        }
        if t.text == "size_of"
            && toks.get(k + 1).is_some_and(|c| c.is_punct(':'))
            && toks.get(k + 2).is_some_and(|c| c.is_punct(':'))
            && toks.get(k + 3).is_some_and(|c| c.is_punct('<'))
            && toks.get(k + 4).is_some_and(|n| n.is_ident(name))
        {
            saw_size_of = true;
        }
    }
    saw_assert && saw_size_of
}
