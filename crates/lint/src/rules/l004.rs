//! L004 — declared hot-path functions must not allocate in steady state.
//!
//! `lint.toml` names the functions (`[hotpath] functions`, written
//! `path::fn_name`). Inside those, allocation-shaped calls from the
//! catalog (`Vec::new`, `format!`, `.to_vec()`, `.collect()`, `.clone()`,
//! ...) are flagged:
//!
//! * anywhere inside a `loop`/`while`/`for` body — the per-event region of
//!   a reactor-style function; setup allocations before the loop are fine;
//! * anywhere at all in a loop-free function — a per-item `observe` has no
//!   setup region, every call it makes is on the hot path.

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::{Tok, TokKind};
use crate::scope::FileCtx;

pub const CODE: &str = "L004";

pub fn check(ctx: &FileCtx<'_>, cfg: &Config, out: &mut Vec<Finding>) {
    for hot in &cfg.hot_functions {
        if !ctx.path.ends_with(hot.file.as_str()) {
            continue;
        }
        for span in ctx.fns.iter().filter(|s| s.name == hot.func) {
            check_body(ctx, span.body, &cfg.alloc_catalog, &hot.func, out);
        }
    }
}

fn check_body(
    ctx: &FileCtx<'_>,
    (open, close): (usize, usize),
    catalog: &[String],
    func: &str,
    out: &mut Vec<Finding>,
) {
    let toks = &ctx.src.toks;
    let has_loop = toks[open..=close.min(toks.len() - 1)]
        .iter()
        .any(|t| matches!(t.text.as_str(), "loop" | "while" | "for") && t.kind == TokKind::Ident);

    let mut depth = 0i32;
    // Brace depths at which a loop body opened (the region is hot while
    // any is on the stack).
    let mut loop_bodies: Vec<i32> = Vec::new();
    let mut pending_loop = false;
    let mut paren = 0i32;
    let mut i = open;
    while i <= close && i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('{') {
            depth += 1;
            if pending_loop && paren == 0 {
                loop_bodies.push(depth);
                pending_loop = false;
            }
        } else if t.is_punct('}') {
            if loop_bodies.last() == Some(&depth) {
                loop_bodies.pop();
            }
            depth -= 1;
        } else if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "loop" | "while" | "for")
            && paren == 0
        {
            pending_loop = true;
        }

        let hot_here = !loop_bodies.is_empty() || !has_loop;
        if hot_here {
            if let Some(call) = alloc_call_at(toks, i, catalog) {
                let region = if has_loop {
                    "inside its steady-state loop"
                } else {
                    "in its per-item body"
                };
                out.push(Finding::new(
                    CODE,
                    ctx.path,
                    t.line,
                    format!("hot-path fn `{func}` calls `{call}` {region}"),
                ));
            }
        }
        i += 1;
    }
}

/// If the token at `i` starts an allocation-shaped call from the catalog,
/// returns its display name. Catalog entry forms: `.method` (method
/// call), `name!` (macro), `Path::fn` (associated call).
fn alloc_call_at(toks: &[Tok], i: usize, catalog: &[String]) -> Option<String> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    for entry in catalog {
        if let Some(m) = entry.strip_prefix('.') {
            // `.clone` — previous token is `.`, next is `(`.
            if t.text == m
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
            {
                return Some(format!(".{m}()"));
            }
        } else if let Some(m) = entry.strip_suffix('!') {
            if t.text == m && toks.get(i + 1).is_some_and(|p| p.is_punct('!')) {
                return Some(format!("{m}!"));
            }
        } else if let Some((path, func)) = entry.split_once("::") {
            if t.text == path
                && toks.get(i + 1).is_some_and(|p| p.is_punct(':'))
                && toks.get(i + 2).is_some_and(|p| p.is_punct(':'))
                && toks.get(i + 3).is_some_and(|f| f.is_ident(func))
            {
                return Some(entry.clone());
            }
        }
    }
    None
}
