//! A hand-rolled token-level lexer for Rust source.
//!
//! The build environment is registry-less (no `syn`), so the lint works at
//! the token level: enough structure to find identifiers, literals, and
//! punctuation with accurate line numbers, while correctly *skipping* the
//! places naive greps go wrong — string literals (`"unsafe"`), raw strings
//! (`r#"Mutex"#` at any hash depth), byte/char literals, lifetimes, and
//! nested block comments. Comments are not discarded: they are collected
//! per line so rules can look for justification markers (`SAFETY:`,
//! `ordering:`, `lint:allow(...)`) next to a flagged token.

use std::collections::{HashMap, HashSet};

/// What kind of token a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `Ordering`, ...).
    Ident,
    /// Numeric literal (`3`, `0x41`, `1.5e3`). Text preserved verbatim.
    Num,
    /// String literal of any flavor (`"x"`, `r#"x"#`, `b"x"`). The token
    /// text is the *inner* content, escapes unprocessed.
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) — kept distinct so it is never confused for a char.
    Lifetime,
    /// Single punctuation character.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True when this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes() == [c as u8]
    }
}

/// A lexed source file: the token stream plus per-line comment and code
/// maps used by the justification-marker lookups.
#[derive(Debug, Default)]
pub struct Source {
    pub toks: Vec<Tok>,
    /// Concatenated comment text per line (line → text). A block comment
    /// spanning lines contributes to every line it covers.
    pub comments: HashMap<u32, String>,
    /// Lines carrying at least one token.
    pub code_lines: HashSet<u32>,
    /// Last non-whitespace code character on each code line (used to spot
    /// statement boundaries when walking upward for a marker).
    pub line_end: HashMap<u32, char>,
    /// Total number of lines.
    pub lines: u32,
}

impl Source {
    /// Comment text attached to `line`, if any.
    pub fn comment_on(&self, line: u32) -> Option<&str> {
        self.comments.get(&line).map(|s| s.as_str())
    }

    /// True when `line` carries code tokens.
    pub fn is_code_line(&self, line: u32) -> bool {
        self.code_lines.contains(&line)
    }
}

/// How many lines above a token [`comments_near`] will walk looking for a
/// justification marker before giving up.
const MARKER_WALK_LIMIT: u32 = 16;

/// Collects the comment text "attached" to `line`: the trailing comment on
/// the line itself, plus the contiguous comment block directly above it.
/// The upward walk tolerates intervening attribute lines and statement
/// continuations, and stops at the end of the previous statement (a line
/// whose code ends in `;`, `{` or `}`) or at a blank line.
pub fn comments_near(src: &Source, line: u32) -> Vec<&str> {
    let mut out = Vec::new();
    if let Some(c) = src.comment_on(line) {
        out.push(c);
    }
    let mut l = line;
    let mut walked = 0;
    while l > 1 && walked < MARKER_WALK_LIMIT {
        l -= 1;
        walked += 1;
        let has_comment = src.comment_on(l).is_some();
        let has_code = src.is_code_line(l);
        if let Some(c) = src.comment_on(l) {
            out.push(c);
        }
        if has_code {
            // The previous statement (or an opened block) ends the walk;
            // a continuation line of the same statement does not.
            if matches!(src.line_end.get(&l), Some(';' | '{' | '}')) {
                break;
            }
        } else if !has_comment {
            break; // blank line
        }
    }
    out
}

/// True when any comment attached to `line` contains `marker`.
pub fn marker_near(src: &Source, line: u32, marker: &str) -> bool {
    comments_near(src, line).iter().any(|c| c.contains(marker))
}

/// Lexes `text` into a [`Source`].
pub fn lex(text: &str) -> Source {
    let mut src = Source::default();
    let b = text.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let push = |src: &mut Source, kind: TokKind, text: String, line: u32| {
        if let Some(last) = text.chars().last() {
            src.line_end.insert(line, last);
        }
        src.code_lines.insert(line);
        src.toks.push(Tok { kind, text, line });
    };

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                append_comment(&mut src, line, &text[start..i]);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comment; contributes per covered line.
                let mut depth = 1;
                i += 2;
                let mut seg_start = i;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else if b[i] == b'\n' {
                        append_comment(&mut src, line, &text[seg_start..i]);
                        line += 1;
                        i += 1;
                        seg_start = i;
                    } else {
                        i += 1;
                    }
                }
                append_comment(&mut src, line, text[seg_start..i].trim_end_matches("*/"));
            }
            b'"' => {
                let (inner, ni, nl) = lex_string(text, i, line);
                push(&mut src, TokKind::Str, inner, line);
                i = ni;
                line = nl;
            }
            b'r' | b'b' if raw_or_byte_literal_at(b, i) => {
                let (kind, inner, ni, nl) = lex_prefixed_literal(text, i, line);
                push(&mut src, kind, inner, line);
                i = ni;
                line = nl;
            }
            b'\'' => {
                // Char literal vs lifetime.
                if is_char_literal_at(text, i) {
                    let (inner, ni, nl) = lex_char(text, i, line);
                    push(&mut src, TokKind::Char, inner, line);
                    i = ni;
                    line = nl;
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    push(
                        &mut src,
                        TokKind::Lifetime,
                        text[start..i].to_string(),
                        line,
                    );
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                push(&mut src, TokKind::Ident, text[start..i].to_string(), line);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    let in_float = d == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit();
                    if d == b'_' || d.is_ascii_alphanumeric() || in_float {
                        i += 1;
                    } else {
                        break;
                    }
                }
                push(&mut src, TokKind::Num, text[start..i].to_string(), line);
            }
            _ => {
                // Multibyte UTF-8 outside literals only occurs in idents we
                // don't care about; emit byte-by-byte punctuation for ASCII
                // and skip continuation bytes.
                if c.is_ascii() {
                    push(&mut src, TokKind::Punct, (c as char).to_string(), line);
                }
                i += 1;
            }
        }
    }
    src.lines = line;
    src
}

fn append_comment(src: &mut Source, line: u32, text: &str) {
    let entry = src.comments.entry(line).or_default();
    if !entry.is_empty() {
        entry.push(' ');
    }
    entry.push_str(text);
}

/// Is `b[i..]` the start of a raw string, byte string, raw byte string, or
/// byte char (as opposed to a plain identifier starting with `r`/`b`)?
fn raw_or_byte_literal_at(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    match rest.first() {
        Some(b'r') => matches!(rest.get(1), Some(b'"') | Some(b'#')) && raw_has_quote(rest, 1),
        Some(b'b') => match rest.get(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(rest.get(2), Some(b'"') | Some(b'#')) && raw_has_quote(rest, 2),
            _ => false,
        },
        _ => false,
    }
}

/// After an `r` at offset `at`, checks that `#`s (if any) lead to a quote —
/// distinguishes `r#"..."#` and `r#ident` (raw identifiers).
fn raw_has_quote(rest: &[u8], at: usize) -> bool {
    let mut j = at;
    while rest.get(j) == Some(&b'#') {
        j += 1;
    }
    rest.get(j) == Some(&b'"')
}

/// Lexes a plain `"..."` string starting at `i`. Returns (inner text, next
/// index, next line).
fn lex_string(text: &str, i: usize, mut line: u32) -> (String, usize, u32) {
    let b = text.as_bytes();
    let mut j = i + 1;
    let start = j;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => break,
            b'\n' => {
                line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    let inner = text[start..j.min(b.len())].to_string();
    (inner, (j + 1).min(b.len()), line)
}

/// Lexes `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, or `b'x'` starting
/// at `i`. Returns (kind, inner text, next index, next line).
fn lex_prefixed_literal(text: &str, i: usize, line: u32) -> (TokKind, String, usize, u32) {
    let b = text.as_bytes();
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j < b.len() && b[j] == b'\'' {
            let (inner, ni, nl) = lex_char(text, j, line);
            return (TokKind::Char, inner, ni, nl);
        }
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        let mut hashes = 0;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        // b[j] == b'"' guaranteed by raw_or_byte_literal_at.
        j += 1;
        let start = j;
        let mut l = line;
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        while j < b.len() {
            if b[j] == b'"' && b[j..].starts_with(&closer) {
                let inner = text[start..j].to_string();
                return (TokKind::Str, inner, j + closer.len(), l);
            }
            if b[j] == b'\n' {
                l += 1;
            }
            j += 1;
        }
        return (TokKind::Str, text[start..j].to_string(), j, l);
    }
    // b"..."
    let (inner, ni, nl) = lex_string(text, j, line);
    (TokKind::Str, inner, ni, nl)
}

/// Lexes a char literal starting at the `'` at index `i`.
fn lex_char(text: &str, i: usize, line: u32) -> (String, usize, u32) {
    let b = text.as_bytes();
    let mut j = i + 1;
    let start = j;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => break,
            _ => j += 1,
        }
    }
    (
        text[start..j.min(b.len())].to_string(),
        (j + 1).min(b.len()),
        line,
    )
}

/// Is the `'` at byte `i` a char literal (vs a lifetime)? `'\...'` always
/// is; `'x'` is when the third char closes the quote.
fn is_char_literal_at(text: &str, i: usize) -> bool {
    let rest = &text[i + 1..];
    let mut chars = rest.chars();
    match chars.next() {
        Some('\\') => true,
        Some(_) => chars.next() == Some('\''),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &Source) -> Vec<&str> {
        src.toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn strings_hide_keywords() {
        let src = lex(r#"let s = "unsafe { Mutex }"; let t = 'u';"#);
        assert!(!idents(&src).contains(&"unsafe"));
        assert!(!idents(&src).contains(&"Mutex"));
    }

    #[test]
    fn raw_strings_at_any_hash_depth() {
        let src = lex("let s = r##\"contains \"# unsafe Mutex\"##; unsafe {}");
        let ids = idents(&src);
        assert_eq!(ids.iter().filter(|i| **i == "unsafe").count(), 1);
        assert!(!ids.contains(&"Mutex"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = lex("fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; x }");
        let lifetimes = src
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
        let chars = src.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 1);
    }

    #[test]
    fn nested_block_comments_are_comments() {
        let src = lex("/* outer /* unsafe */ still comment */ fn f() {}");
        assert!(!idents(&src).contains(&"unsafe"));
        assert!(idents(&src).contains(&"fn"));
        assert!(src.comment_on(1).unwrap().contains("unsafe"));
    }

    #[test]
    fn line_numbers_track_multiline_literals() {
        let src = lex("let a = \"line\n1\";\nlet b = 2;");
        let b_tok = src.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn comments_near_walks_over_attributes_and_continuations() {
        let text = "// SAFETY: fine\n#[allow(dead_code)]\nlet rc =\n    unsafe { f() };\n";
        let src = lex(text);
        let u = src.toks.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert!(marker_near(&src, u.line, "SAFETY:"));
    }

    #[test]
    fn marker_walk_stops_at_previous_statement() {
        let text = "// SAFETY: belongs to g\nlet a = g();\nlet b = unsafe { f() };\n";
        let src = lex(text);
        let u = src.toks.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert!(!marker_near(&src, u.line, "SAFETY:"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = lex(r##"let a = b"unsafe"; let c = b'x'; let r = br#"Mutex"#;"##);
        assert!(!idents(&src).contains(&"unsafe"));
        assert!(!idents(&src).contains(&"Mutex"));
    }
}
