//! Fixture tests: every rule exercised on a firing and a clean fixture,
//! including the lexer edge cases that break naive grep-based checks.

use std::collections::BTreeSet;

use dwrs_lint::config::Config;
use dwrs_lint::diag::Finding;
use dwrs_lint::lexer::lex;
use dwrs_lint::rules;
use dwrs_lint::scope::{fn_spans, FileCtx};

/// Runs one per-file rule over a source fixture.
fn findings_of(source: &str, rule: impl Fn(&FileCtx<'_>, &mut Vec<Finding>)) -> Vec<Finding> {
    let src = lex(source);
    let fns = fn_spans(&src.toks);
    let ctx = FileCtx {
        path: "fixture.rs",
        src: &src,
        fns: &fns,
    };
    let mut out = Vec::new();
    rule(&ctx, &mut out);
    out
}

// ------------------------------------------------------------------ L001

#[test]
fn l001_fires_on_bare_unsafe_block() {
    let out = findings_of(
        "fn f() {\n    let x = unsafe { g() };\n}\n",
        rules::l001::check,
    );
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].code, "L001");
    assert_eq!(out[0].line, 2);
}

#[test]
fn l001_accepts_safety_comment_above_and_trailing() {
    let above = "fn f() {\n    // SAFETY: g has no preconditions\n    let x = unsafe { g() };\n}\n";
    assert!(findings_of(above, rules::l001::check).is_empty());
    let trailing = "fn f() {\n    let x = unsafe { g() }; // SAFETY: fine\n}\n";
    assert!(findings_of(trailing, rules::l001::check).is_empty());
}

#[test]
fn l001_covers_unsafe_fn_and_impl() {
    let out = findings_of(
        "unsafe fn f() {}\nunsafe impl Send for T {}\n",
        rules::l001::check,
    );
    assert_eq!(out.len(), 2);
    assert!(out[0].message.contains("unsafe fn"));
    assert!(out[1].message.contains("unsafe impl"));
}

#[test]
fn l001_ignores_unsafe_inside_string_literals() {
    let out = findings_of(
        "fn f() { let s = \"unsafe { not code }\"; let r = r#\"unsafe\"#; }\n",
        rules::l001::check,
    );
    assert!(out.is_empty());
}

// ------------------------------------------------------------------ L002

const L002_FIRING: &str = r#"
fn producer(flag: &AtomicBool) {
    flag.store(true, Ordering::Relaxed);
}
fn consumer(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed)
}
"#;

#[test]
fn l002_fires_on_cross_function_relaxed_flag() {
    let out = findings_of(L002_FIRING, rules::l002::check);
    assert_eq!(out.len(), 2);
    assert!(out.iter().all(|f| f.code == "L002"));
}

#[test]
fn l002_accepts_ordering_justification() {
    let src = r#"
fn producer(flag: &AtomicBool) {
    // ordering: Relaxed — results travel through join, not this flag.
    flag.store(true, Ordering::Relaxed);
}
fn consumer(flag: &AtomicBool) -> bool {
    // ordering: Relaxed — quiescence poll only.
    flag.load(Ordering::Relaxed)
}
"#;
    assert!(findings_of(src, rules::l002::check).is_empty());
}

#[test]
fn l002_exempts_single_function_atomics() {
    // A test-local stop flag: all ops in one fn, no cross-thread contract.
    let src = r#"
fn test_stop() {
    let stop = AtomicBool::new(false);
    stop.store(true, Ordering::Relaxed);
    assert!(stop.load(Ordering::Relaxed));
}
"#;
    assert!(findings_of(src, rules::l002::check).is_empty());
}

#[test]
fn l002_exempts_acquire_release() {
    let src = r#"
fn producer(flag: &AtomicBool) {
    flag.store(true, Ordering::Release);
}
fn consumer(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}
"#;
    assert!(findings_of(src, rules::l002::check).is_empty());
}

#[test]
fn l002_ignores_non_atomic_swap() {
    // `Vec::swap` has no Ordering argument and must not count as a store.
    let src = r#"
fn shuffle(v: &mut Vec<u32>) {
    v.swap(0, 1);
}
fn read(v: &AtomicU64) -> u64 {
    v.load(Ordering::Relaxed)
}
"#;
    assert!(findings_of(src, rules::l002::check).is_empty());
}

// ------------------------------------------------------------------ L003

fn l003_run(source: &str, cfg_toml: &str) -> Vec<Finding> {
    let cfg = Config::parse(cfg_toml).unwrap();
    let locks: BTreeSet<String> = cfg.lock_names.iter().cloned().collect();
    let src = lex(source);
    let fns = fn_spans(&src.toks);
    let ctx = FileCtx {
        path: "fixture.rs",
        src: &src,
        fns: &fns,
    };
    let mut out = Vec::new();
    let edges = rules::l003::scan_file(&ctx, &locks, &mut out);
    rules::l003::check_workspace(&cfg, &edges, &mut out);
    out
}

const L003_CFG: &str = r#"
[locks]
names = ["streams", "drained"]
chains = [["streams", "drained"]]
"#;

#[test]
fn l003_accepts_declared_order() {
    let src = r#"
fn drain(shared: &Shared) {
    let mut streams = shared.streams.lock().unwrap();
    shared.drained.lock().unwrap().push(1);
    drop(streams);
}
"#;
    assert!(l003_run(src, L003_CFG).is_empty());
}

#[test]
fn l003_fires_on_order_violation() {
    let src = r#"
fn backwards(shared: &Shared) {
    let mut d = shared.drained.lock().unwrap();
    let s = shared.streams.lock().unwrap();
}
"#;
    let out = l003_run(src, L003_CFG);
    assert!(out
        .iter()
        .any(|f| f.message.contains("lock order violation")));
}

#[test]
fn l003_fires_on_undeclared_nesting() {
    let cfg = "[locks]\nnames = [\"streams\", \"drained\"]\n";
    let src = r#"
fn nested(shared: &Shared) {
    let s = shared.streams.lock().unwrap();
    let d = shared.drained.lock().unwrap();
}
"#;
    let out = l003_run(src, cfg);
    assert!(out
        .iter()
        .any(|f| f.message.contains("undeclared lock nesting")));
}

#[test]
fn l003_fires_on_same_lock_reacquisition() {
    let src = r#"
fn twice(shared: &Shared) {
    let a = shared.streams.lock().unwrap();
    let b = shared.streams.lock().unwrap();
}
"#;
    let out = l003_run(src, L003_CFG);
    assert!(out.iter().any(|f| f.message.contains("self-deadlock")));
}

#[test]
fn l003_detects_declared_cycle() {
    let cfg = r#"
[locks]
names = ["a", "b"]
chains = [["a", "b"], ["b", "a"]]
"#;
    let out = l003_run("fn f() {}", cfg);
    assert!(out.iter().any(|f| f.message.contains("cycle")));
}

#[test]
fn l003_statement_temporary_releases_at_semicolon() {
    // Two sequential statement temporaries never overlap.
    let src = r#"
fn seq(shared: &Shared) {
    shared.streams.lock().unwrap().remove(name);
    shared.drained.lock().unwrap().clear();
    let n = shared.drained.lock().unwrap().len();
    shared.streams.lock().unwrap().insert(name);
}
"#;
    // The last line acquires `streams` with nothing held — even though
    // `drained` (which must follow streams) was locked in earlier
    // statements, those guards are gone.
    assert!(l003_run(src, L003_CFG).is_empty());
}

#[test]
fn l003_for_header_guard_released_after_loop() {
    // Regression: a `for` header guard chained through `.iter()` is held
    // for the body but released at the loop's close, so back-to-back
    // loops over differently-ordered locks do not nest.
    let src = r#"
fn snapshot(shared: &Shared) {
    for x in shared.drained.lock().unwrap().iter() {
        use_it(x);
    }
    for y in shared.streams.lock().unwrap().iter() {
        use_it(y);
    }
}
"#;
    assert!(l003_run(src, L003_CFG).is_empty());
}

#[test]
fn l003_for_header_guard_is_held_inside_body() {
    let src = r#"
fn snapshot(shared: &Shared) {
    for x in shared.drained.lock().unwrap().iter() {
        let s = shared.streams.lock().unwrap();
    }
}
"#;
    let out = l003_run(src, L003_CFG);
    assert!(out
        .iter()
        .any(|f| f.message.contains("lock order violation")));
}

#[test]
fn l003_drop_releases_early() {
    let src = r#"
fn careful(shared: &Shared) {
    let d = shared.drained.lock().unwrap();
    drop(d);
    let s = shared.streams.lock().unwrap();
}
"#;
    assert!(l003_run(src, L003_CFG).is_empty());
}

#[test]
fn l003_raw_string_mutex_is_not_code() {
    let cfg = "[locks]\nnames = [\"streams\"]\n";
    let src = r###"
fn doc() -> &'static str {
    r#"call streams.lock() twice: streams.lock()"#
}
"###;
    assert!(l003_run(src, cfg).is_empty());
}

// ------------------------------------------------------------------ L004

fn l004_run(source: &str) -> Vec<Finding> {
    let cfg = Config::parse(
        "[hotpath]\nfunctions = [\"fixture.rs::site_worker\", \"fixture.rs::observe\"]\n",
    )
    .unwrap();
    let src = lex(source);
    let fns = fn_spans(&src.toks);
    let ctx = FileCtx {
        path: "fixture.rs",
        src: &src,
        fns: &fns,
    };
    let mut out = Vec::new();
    rules::l004::check(&ctx, &cfg, &mut out);
    out
}

#[test]
fn l004_fires_on_alloc_in_hot_loop() {
    let src = r#"
fn site_worker() {
    let mut buf = Vec::new();
    loop {
        let msg = format!("ev {}", 1);
        let copy = buf.clone();
    }
}
"#;
    let out = l004_run(src);
    assert_eq!(out.len(), 2);
    assert!(out[0].message.contains("format!"));
    assert!(out[1].message.contains(".clone()"));
}

#[test]
fn l004_accepts_setup_allocations_before_the_loop() {
    let src = r#"
fn site_worker() {
    let mut buf = Vec::with_capacity(64);
    let name = String::from("worker");
    loop {
        buf.push(1);
    }
}
"#;
    assert!(l004_run(src).is_empty());
}

#[test]
fn l004_loop_free_hot_fn_is_hot_everywhere() {
    let src = r#"
fn observe(&mut self, item: Item) {
    let label = item.name.to_string();
    self.push(item);
}
"#;
    let out = l004_run(src);
    assert_eq!(out.len(), 1);
    assert!(out[0].message.contains(".to_string()"));
}

#[test]
fn l004_ignores_functions_not_declared_hot() {
    let src = r#"
fn cold_path() {
    loop {
        let msg = format!("{}", 1);
    }
}
"#;
    assert!(l004_run(src).is_empty());
}

// ------------------------------------------------------------------ L005

#[test]
fn l005_wire_tags_in_parses_constants() {
    let tags = dwrs_lint::wire_tags_in(
        "pub const TAG_A: u8 = 0x10;\nconst TAG_B: u8 = 33;\nconst OTHER: u8 = 1;\nconst TAG_S: u16 = 2;\n",
    );
    let names: Vec<&str> = tags.iter().map(|t| t.name.as_str()).collect();
    assert_eq!(names, vec!["TAG_A", "TAG_B"]);
    assert_eq!(tags[0].value, 0x10);
    assert_eq!(tags[1].value, 33);
}

fn l005_run(files: &[(&str, &str)], doc: &str, cfg_toml: &str) -> Vec<Finding> {
    let cfg = Config::parse(cfg_toml).unwrap();
    let files: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    let doc = doc.to_string();
    let mut out = Vec::new();
    rules::l005::check_workspace(&cfg, &files, &|_| Some(doc.clone()), &mut out);
    out
}

const L005_CFG: &str = r#"
[[tags.namespace]]
name = "a"
files = ["a.rs"]
doc = "DOC.md"
"#;

#[test]
fn l005_fires_on_value_collision_within_namespace() {
    let out = l005_run(
        &[("a.rs", "const TAG_X: u8 = 0x10;\nconst TAG_Y: u8 = 0x10;\n")],
        "`TAG_X` = `0x10` `TAG_Y` = `0x10`",
        L005_CFG,
    );
    assert!(out.iter().any(|f| f.message.contains("collides")));
}

#[test]
fn l005_fires_on_undocumented_tag() {
    let out = l005_run(
        &[("a.rs", "const TAG_X: u8 = 0x10;\n")],
        "no tags here",
        L005_CFG,
    );
    assert!(out.iter().any(|f| f.message.contains("not documented")));
}

#[test]
fn l005_allows_cross_namespace_value_reuse_but_not_name_reuse() {
    let cfg = r#"
[[tags.namespace]]
name = "a"
files = ["a.rs"]
doc = "DOC.md"

[[tags.namespace]]
name = "b"
files = ["b.rs"]
doc = "DOC.md"
"#;
    // Same value 0x10 in two namespaces: fine. Same name: finding.
    let out = l005_run(
        &[
            ("a.rs", "const TAG_X: u8 = 0x10;\n"),
            ("b.rs", "const TAG_Y: u8 = 0x10;\n"),
        ],
        "`TAG_X` = `0x10`, `TAG_Y` = `0x10`",
        cfg,
    );
    assert!(out.is_empty());
    let out = l005_run(
        &[
            ("a.rs", "const TAG_X: u8 = 0x10;\n"),
            ("b.rs", "const TAG_X: u8 = 0x11;\n"),
        ],
        "`TAG_X` = `0x10` and `0x11`",
        cfg,
    );
    assert!(out.iter().any(|f| f.message.contains("globally unique")));
}

const L005_TRACE_CFG: &str = r#"
[tags.trace]
file = "trace.rs"
enum = "TraceKind"
doc = "DOC.md"
"#;

const L005_TRACE_SRC: &str = r#"
impl TraceKind {
    pub fn as_u8(self) -> u8 {
        match self {
            TraceKind::Create => 1,
            TraceKind::Attach => 2,
        }
    }
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Create => "create",
            TraceKind::Attach => "attach",
        }
    }
}
"#;

#[test]
fn l005_trace_catalog_round_trips() {
    let out = l005_run(
        &[("trace.rs", L005_TRACE_SRC)],
        "| 1 | `create` | x |\n| 2 | `attach` | y |\n",
        L005_TRACE_CFG,
    );
    assert!(out.is_empty());
}

#[test]
fn l005_trace_fires_on_missing_doc_row_and_dup_code() {
    let out = l005_run(
        &[("trace.rs", L005_TRACE_SRC)],
        "| 1 | `create` | x |\n",
        L005_TRACE_CFG,
    );
    assert!(out.iter().any(|f| f.message.contains("no catalog row")));

    let dup = r#"
impl TraceKind {
    pub fn as_u8(self) -> u8 {
        match self {
            TraceKind::Create => 1,
            TraceKind::Attach => 1,
        }
    }
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Create => "create",
            TraceKind::Attach => "attach",
        }
    }
}
"#;
    let out = l005_run(
        &[("trace.rs", dup)],
        "| 1 | `create` | x |\n| 1 | `attach` | y |\n",
        L005_TRACE_CFG,
    );
    assert!(out.iter().any(|f| f.message.contains("collides")));
}

// ------------------------------------------------------------------ L006

#[test]
fn l006_fires_on_bare_packed_repr() {
    let out = findings_of(
        "#[repr(C, packed)]\nstruct Ev { a: u32, b: u64 }\n",
        rules::l006::check,
    );
    assert_eq!(out.len(), 2);
    assert!(out[0].message.contains("not cfg-gated"));
    assert!(out[1].message.contains("size assertion"));
}

#[test]
fn l006_accepts_gated_and_asserted_packed_repr() {
    let src = r#"
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct Ev { a: u32, b: u64 }
const _: () = assert!(std::mem::size_of::<Ev>() == 12);
"#;
    assert!(findings_of(src, rules::l006::check).is_empty());
}

#[test]
fn l006_gated_but_unasserted_still_fires() {
    let src = r#"
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
struct Ev { a: u32, b: u64 }
"#;
    let out = findings_of(src, rules::l006::check);
    assert_eq!(out.len(), 1);
    assert!(out[0].message.contains("size assertion"));
}

#[test]
fn l006_plain_repr_c_is_fine() {
    assert!(findings_of("#[repr(C)]\nstruct Ok { a: u32 }\n", rules::l006::check).is_empty());
}

// ------------------------------------------------- end-to-end run() + allows

#[test]
fn run_applies_configured_and_inline_allows() {
    let dir = std::env::temp_dir().join(format!("dwrs-lint-test-{}", std::process::id()));
    let src_dir = dir.join("src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(
        src_dir.join("a.rs"),
        "fn f() {\n    let x = unsafe { g() };\n    // lint:allow(L001) -- fixture exercises the inline escape hatch\n    let y = unsafe { h() };\n}\n",
    )
    .unwrap();
    let cfg = Config::parse(
        "[scan]\ninclude = [\"src\"]\n\n[[allow]]\ncode = \"L001\"\nfile = \"src/a.rs\"\nline = 2\nreason = \"fixture\"\n",
    )
    .unwrap();
    let report = dwrs_lint::run(&dir, &cfg);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(report.files, 1);
    assert_eq!(report.findings.len(), 0, "{:?}", report.findings);
    assert_eq!(report.allowed, 2);
}
