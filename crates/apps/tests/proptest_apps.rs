//! Property-based tests for the application layer.

use dwrs_apps::l1::{
    FolkloreTracker, HyzTracker, L1Config, L1DupTracker, L1Estimator, PiggybackL1Tracker,
};
use dwrs_apps::residual_hh::{exact_residual_heavy_hitters, recall, ResidualHhConfig};
use dwrs_apps::SlidingWindowSwor;
use dwrs_core::Item;
use proptest::prelude::*;

fn weights_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1.0f64..10_000.0, 1..250)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // -------------------------------------------------- residual HH oracle

    #[test]
    fn oracle_includes_the_maximum_item(weights in weights_strategy(), eps in 0.05f64..0.9) {
        let items: Vec<Item> = weights.iter().enumerate()
            .map(|(i, &w)| Item::new(i as u64, w)).collect();
        let want = exact_residual_heavy_hitters(&items, eps);
        if !want.is_empty() {
            // The globally heaviest item always qualifies (its weight is
            // at least that of any qualifying item).
            let max_id = items
                .iter()
                .max_by(|a, b| a.weight.total_cmp(&b.weight))
                .map(|i| i.id)
                .expect("non-empty");
            prop_assert!(want.contains(&max_id));
        }
    }

    #[test]
    fn oracle_downward_closed_in_weight(weights in weights_strategy(), eps in 0.05f64..0.9) {
        // If item x qualifies and w_y >= w_x then y qualifies.
        let items: Vec<Item> = weights.iter().enumerate()
            .map(|(i, &w)| Item::new(i as u64, w)).collect();
        let want = exact_residual_heavy_hitters(&items, eps);
        let min_qualifying = items.iter()
            .filter(|i| want.contains(&i.id))
            .map(|i| i.weight)
            .fold(f64::INFINITY, f64::min);
        for it in &items {
            if it.weight >= min_qualifying {
                prop_assert!(want.contains(&it.id), "item {} excluded", it.id);
            }
        }
    }

    #[test]
    fn recall_is_monotone_in_got(weights in weights_strategy()) {
        let items: Vec<Item> = weights.iter().enumerate()
            .map(|(i, &w)| Item::new(i as u64, w)).collect();
        let want: Vec<u64> = items.iter().take(5).map(|i| i.id).collect();
        let partial = recall(&want, &items[..items.len() / 2]);
        let full = recall(&want, &items);
        prop_assert!(full >= partial);
        prop_assert!((0.0..=1.0).contains(&partial));
        prop_assert_eq!(full, 1.0);
    }

    // -------------------------------------------------- L1 trackers

    #[test]
    fn folklore_error_never_exceeds_eps(
        weights in weights_strategy(), eps in 0.02f64..0.5, k in 1usize..6
    ) {
        let mut t = FolkloreTracker::new(eps, k);
        let mut true_w = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            t.observe(i % k, Item::new(i as u64, w));
            true_w += w;
            let est = t.estimate().expect("estimate after first item");
            prop_assert!(
                (est - true_w).abs() / true_w <= eps + 1e-9,
                "err {} at step {}", (est - true_w).abs() / true_w, i
            );
        }
    }

    #[test]
    fn trackers_are_deterministic_per_seed(
        weights in proptest::collection::vec(1.0f64..100.0, 1..80),
        seed in any::<u64>()
    ) {
        let k = 3;
        let run = |s: u64| {
            let mut cfg = L1Config::new(0.3, 0.3, k);
            cfg.sample_size_override = Some(12);
            cfg.dup_override = Some(40);
            let mut dup = L1DupTracker::new(cfg, s);
            let mut hyz = HyzTracker::new(0.3, k, s);
            let mut piggy = PiggybackL1Tracker::new(12, k, s);
            for (i, &w) in weights.iter().enumerate() {
                dup.observe(i % k, Item::new(i as u64, w));
                hyz.observe(i % k, Item::new(i as u64, w));
                piggy.observe(i % k, Item::new(i as u64, w));
            }
            (
                dup.estimate(), dup.messages(),
                hyz.estimate(), hyz.messages(),
                piggy.estimate(), piggy.messages(),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn estimates_are_positive_and_finite(
        weights in proptest::collection::vec(1.0f64..1000.0, 5..120),
        seed in any::<u64>()
    ) {
        let k = 2;
        let mut cfg = L1Config::new(0.3, 0.3, k);
        cfg.sample_size_override = Some(8);
        cfg.dup_override = Some(30);
        let mut dup = L1DupTracker::new(cfg, seed);
        let mut piggy = PiggybackL1Tracker::new(8, k, seed);
        for (i, &w) in weights.iter().enumerate() {
            dup.observe(i % k, Item::new(i as u64, w));
            piggy.observe(i % k, Item::new(i as u64, w));
        }
        for est in [dup.estimate(), piggy.estimate()] {
            let est = est.expect("estimate available");
            prop_assert!(est > 0.0 && est.is_finite(), "estimate {}", est);
        }
    }

    // -------------------------------------------------- sliding window

    #[test]
    fn window_sample_is_subset_of_window(
        weights in proptest::collection::vec(1.0f64..100.0, 1..300),
        window in 1u64..64,
        s in 1usize..6,
        seed in any::<u64>()
    ) {
        let mut sw = SlidingWindowSwor::new(s, window, seed);
        for (i, &w) in weights.iter().enumerate() {
            sw.observe(Item::new(i as u64, w));
            let t = (i + 1) as u64;
            let sample = sw.sample();
            let expect = (window.min(t) as usize).min(s);
            prop_assert_eq!(sample.len(), expect, "at time {}", t);
            for kd in &sample {
                prop_assert!(kd.item.id + window >= t, "stale item in window sample");
            }
        }
    }

    #[test]
    fn window_retained_never_exceeds_window(
        n in 1usize..400, window in 1u64..128, s in 1usize..5, seed in any::<u64>()
    ) {
        let mut sw = SlidingWindowSwor::new(s, window, seed);
        for i in 0..n {
            sw.observe(Item::unit(i as u64));
            prop_assert!(sw.retained_len() as u64 <= window);
        }
    }

    // -------------------------------------------------- residual HH config

    #[test]
    fn rhh_config_sizes_monotone(eps in 0.02f64..0.5, delta in 0.01f64..0.5) {
        let a = ResidualHhConfig::new(eps, delta, 4).sample_size();
        let b = ResidualHhConfig::new(eps / 2.0, delta, 4).sample_size();
        prop_assert!(b >= a, "halving eps must not shrink s");
        prop_assert!(ResidualHhConfig::new(eps, delta, 4).output_size() >= 2);
    }
}
