//! Live-answer extraction: turning a coordinator's *current* weighted
//! sample into each application's answer **mid-stream**.
//!
//! The paper's protocols are continuous — the coordinator's state is a
//! valid weighted SWOR of everything observed so far at every instant, so
//! each application answer can be read off *now*, not only at end of
//! stream. These helpers are the single implementation shared by the
//! batch path (`dwrs-runtime`'s end-of-run [`answers`](self)) and the
//! daemon's live queries (`dwrs query --kind l1-now` etc.), so a
//! mid-stream answer and a final answer are computed by the same code.
//!
//! All functions take the sample **sorted by key descending** — the order
//! `SworCoordinator::sample` and the tree root's merge already produce.

use dwrs_core::Keyed;

/// Algorithm 1's output statistic `u`: the `s`-th largest key of the
/// query set (released sample ∪ withheld items — withheld heavy levels
/// carry the largest keys, so they must be included). Zero until the
/// sample fills: before `s` keys exist there is no estimate yet.
pub fn sth_largest_key(sample: &[Keyed], s: usize) -> f64 {
    if sample.len() >= s {
        sample.last().map_or(0.0, |kd| kd.key)
    } else {
        0.0
    }
}

/// The L1 tracker's estimate `W̃ = s·u/ℓ` (Theorem 6): `u` is the
/// `s`-th-largest-key statistic over the duplicated stream and `ℓ` the
/// duplication factor. Valid at any instant; before the sample fills
/// (`u = 0`) the estimate is 0.
pub fn l1_estimate(s: usize, ell: u64, u: f64) -> f64 {
    s as f64 * u / ell as f64
}

/// The residual-heavy-hitter candidate set so far: the top `2/ε` sample
/// items by weight, heaviest first (Section 4's extraction, applied to
/// the current sample instead of the final one). `output_size` is
/// `ResidualHhConfig::output_size()` = `⌈2/ε⌉`.
pub fn rhh_candidates(sample: &[Keyed], output_size: usize) -> Vec<Keyed> {
    let mut candidates: Vec<Keyed> = sample.to_vec();
    candidates.sort_by(|a, b| b.item.weight.total_cmp(&a.item.weight));
    candidates.truncate(output_size);
    candidates
}

/// The sample filtered to the trailing `window` arrivals, assuming item
/// ids are arrival sequence numbers (the repo's synthetic workloads and
/// the window protocol's convention): an entry survives iff
/// `id ≥ items_observed − window`.
///
/// This is a *best-effort* live view over the plain SWOR state — exact
/// sequence-based window sampling needs the dedicated window protocol
/// nodes; over a daemon stream running plain SWOR it degrades gracefully
/// to "recent survivors of the overall sample".
pub fn window_survivors(sample: &[Keyed], items_observed: u64, window: u64) -> Vec<Keyed> {
    let cutoff = items_observed.saturating_sub(window);
    sample
        .iter()
        .filter(|kd| kd.item.id >= cutoff)
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwrs_core::Item;

    fn kd(id: u64, weight: f64, key: f64) -> Keyed {
        Keyed::new(Item::new(id, weight), key)
    }

    #[test]
    fn u_statistic_is_zero_until_full() {
        let sample = vec![kd(1, 1.0, 9.0), kd(2, 1.0, 5.0)];
        assert_eq!(sth_largest_key(&sample, 3), 0.0);
        assert_eq!(sth_largest_key(&sample, 2), 5.0);
        assert_eq!(sth_largest_key(&[], 1), 0.0);
    }

    #[test]
    fn l1_estimate_formula() {
        assert_eq!(l1_estimate(10, 2, 6.0), 30.0);
        assert_eq!(l1_estimate(10, 1, 0.0), 0.0);
    }

    #[test]
    fn rhh_candidates_are_heaviest_first() {
        let sample = vec![kd(1, 2.0, 9.0), kd(2, 8.0, 5.0), kd(3, 4.0, 4.0)];
        let top = rhh_candidates(&sample, 2);
        assert_eq!(
            top.iter().map(|kd| kd.item.id).collect::<Vec<_>>(),
            vec![2, 3]
        );
    }

    #[test]
    fn window_filters_by_arrival_cutoff() {
        let sample = vec![kd(100, 1.0, 9.0), kd(40, 1.0, 5.0), kd(90, 1.0, 2.0)];
        let recent = window_survivors(&sample, 100, 20);
        assert_eq!(
            recent.iter().map(|kd| kd.item.id).collect::<Vec<_>>(),
            vec![100, 90]
        );
        // A window longer than the stream keeps everything.
        assert_eq!(window_survivors(&sample, 100, 1000).len(), 3);
    }
}
