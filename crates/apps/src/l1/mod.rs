//! Distributed L1 (count) tracking — paper Section 5.
//!
//! Three trackers behind one interface:
//!
//! * [`L1DupTracker`] — the paper's algorithm (Theorem 6 / Corollary 3):
//!   duplicate each update `ℓ = s/(2ε)` times into a weighted SWOR with
//!   `s = Θ(ε⁻²·log(1/δ))`; the s-th largest key `u` concentrates around
//!   `ℓ·W/s`, so `W̃ = s·u/ℓ = (1±ε)·W`. Expected messages
//!   `O(k·log(εW)/log k + log(εW)/ε²)` — optimal for `k ≥ 1/ε²`.
//! * [`FolkloreTracker`] — the deterministic `(1+ε)` local-threshold
//!   protocol attributed to "\[14\] + folklore": `O(k·log(W)/ε)` messages.
//! * [`HyzTracker`] — reconstruction of the randomized tracker of Huang,
//!   Yi and Zhang \[23\]: `O((k + √k/ε)·log W)` messages, the best prior
//!   bound and optimal for `k ≤ 1/ε²`.
//! * [`PiggybackL1Tracker`] — an implementation extension: rides on a
//!   weighted SWOR deployment at zero extra messages with `O(1/√s)` error
//!   (the withheld-weight + key-statistic estimator of experiment E15b).
//!
//! Experiment E13 runs all three over the same streams to regenerate the
//! paper's Section 5 comparison table, including the `k` vs `1/ε²`
//! crossover.

pub mod duplication;
pub mod folklore;
pub mod hyz;
pub mod node;
pub mod piggyback;

pub use duplication::{L1Config, L1DupTracker};
pub use folklore::FolkloreTracker;
pub use hyz::HyzTracker;
pub use node::L1Site;
pub use piggyback::PiggybackL1Tracker;

use dwrs_core::Item;

/// Common interface over L1 trackers (used by the comparison experiments).
pub trait L1Estimator {
    /// Feeds one item observed at `site`.
    fn observe(&mut self, site: usize, item: Item);
    /// The coordinator's current estimate `W̃` (None before enough state
    /// exists — only possible in the first round of a tracker).
    fn estimate(&self) -> Option<f64>;
    /// Total messages spent so far (site→coordinator plus coordinator→site,
    /// broadcasts counting `k`).
    fn messages(&self) -> u64;
    /// Human-readable name for tables.
    fn name(&self) -> &'static str;
}

/// Runs a tracker over a partitioned stream, probing the relative error
/// every `probe_every` items; returns `(max_rel_error, messages)`.
pub fn run_tracker<T: L1Estimator>(
    tracker: &mut T,
    stream: &[(usize, Item)],
    probe_every: usize,
) -> (f64, u64) {
    assert!(probe_every >= 1);
    let mut true_w = 0.0f64;
    let mut max_err = 0.0f64;
    for (t, (site, item)) in stream.iter().enumerate() {
        tracker.observe(*site, *item);
        true_w += item.weight;
        if (t + 1) % probe_every == 0 {
            if let Some(est) = tracker.estimate() {
                let err = (est - true_w).abs() / true_w;
                max_err = max_err.max(err);
            }
        }
    }
    (max_err, tracker.messages())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_tracker_probes() {
        let mut t = FolkloreTracker::new(0.1, 2);
        let stream: Vec<(usize, Item)> = (0..100)
            .map(|i| ((i % 2) as usize, Item::unit(i as u64)))
            .collect();
        let (err, msgs) = run_tracker(&mut t, &stream, 10);
        assert!(err <= 0.1 + 1e-9, "err {err}");
        assert!(msgs > 0);
    }
}
