//! The paper's L1 tracker (Section 5, Algorithm 1, Theorem 6).
//!
//! Every update `(e, w)` is duplicated `ℓ = s/(2ε)` times and inserted into
//! a weighted SWOR instance `P` with `s = ⌈10·ln(1/δ)/ε²⌉`. After
//! duplication, no single inserted item exceeds an `ε/(2s)` fraction of the
//! duplicated stream, so (by Nagaraja's identity and the exponential tail
//! bound, Proposition 8) the s-th largest key `u` concentrates:
//! `u = (1±O(ε))·ℓ·W/s`, and the output is `W̃ = s·u/ℓ`.
//!
//! ### Batched-but-exact simulation
//!
//! Feeding `ℓ` literal duplicates per update would cost `O(ℓ)` per item, so
//! the site-side work is collapsed without changing any distribution or any
//! message count:
//!
//! * duplicates headed for an unsaturated level are sent one by one (they
//!   are real early messages) until the coordinator reports saturation —
//!   with instant delivery this is exactly `min(ℓ, remaining capacity)`;
//! * for the rest, only duplicates whose key clears the threshold cause a
//!   message; the gap between consecutive clearing duplicates is geometric
//!   with success probability `P(key > θ) = 1 - e^{-w/θ}`, and each
//!   clearing key is drawn from the exact conditional distribution
//!   ([`dwrs_core::keys::key_above`]). Epoch advances triggered by an
//!   accepted key take effect for the remaining duplicates, exactly as in
//!   the sequential protocol.
//!
//! The equivalence with the naive one-duplicate-at-a-time execution is
//! property-tested in this module.
//!
//! The tracker assumes instant broadcast delivery (the paper's synchronous
//! round model); this is what makes the geometric collapse exact.

use dwrs_core::keys::{key_above, p_key_above};
use dwrs_core::math::geometric_trials;
use dwrs_core::rng::{mix, Rng};
use dwrs_core::swor::{level_of, DownMsg, SworConfig, SworCoordinator, UpMsg};
use dwrs_core::Item;

use super::L1Estimator;

/// Parameters of the duplication tracker.
#[derive(Clone, Debug)]
pub struct L1Config {
    /// Relative accuracy `ε`.
    pub eps: f64,
    /// Per-time failure probability `δ`.
    pub delta: f64,
    /// Number of sites `k`.
    pub num_sites: usize,
    /// Overrides the derived SWOR sample size `s` (experiments only).
    pub sample_size_override: Option<usize>,
    /// Overrides the duplication factor `ℓ` (experiments only).
    pub dup_override: Option<u64>,
}

impl L1Config {
    /// Standard configuration.
    pub fn new(eps: f64, delta: f64, num_sites: usize) -> Self {
        assert!(eps > 0.0 && eps < 0.5, "ε must be in (0, 0.5)");
        assert!(delta > 0.0 && delta < 1.0);
        assert!(num_sites >= 1);
        Self {
            eps,
            delta,
            num_sites,
            sample_size_override: None,
            dup_override: None,
        }
    }

    /// Sample size `s = ⌈10·ln(1/δ)/ε²⌉` (Proposition 8's constant).
    pub fn sample_size(&self) -> usize {
        if let Some(s) = self.sample_size_override {
            return s;
        }
        let s = 10.0 * (1.0 / self.delta).ln() / (self.eps * self.eps);
        (s.ceil() as usize).max(2)
    }

    /// Duplication factor `ℓ = ⌈s/(2ε)⌉`.
    pub fn duplication(&self) -> u64 {
        if let Some(l) = self.dup_override {
            return l;
        }
        ((self.sample_size() as f64 / (2.0 * self.eps)).ceil() as u64).max(1)
    }
}

/// Message counters of the duplication tracker (faithful wire counts).
#[derive(Clone, Copy, Debug, Default)]
pub struct L1Metrics {
    /// Early (withheld) duplicate messages.
    pub early: u64,
    /// Regular keyed duplicate messages.
    pub regular: u64,
    /// Broadcast events (each costs `k` downstream messages).
    pub broadcast_events: u64,
    /// Total downstream messages.
    pub down: u64,
}

impl L1Metrics {
    /// Total messages both directions.
    pub fn total(&self) -> u64 {
        self.early + self.regular + self.down
    }
}

/// The paper's duplication-based L1 tracker.
#[derive(Debug)]
pub struct L1DupTracker {
    cfg: L1Config,
    s: usize,
    ell: u64,
    r: f64,
    coord: SworCoordinator,
    /// Shared (instant-delivery) site view of the epoch threshold.
    threshold: f64,
    rng: Rng,
    downs: Vec<DownMsg>,
    /// Faithful message counters.
    pub metrics: L1Metrics,
}

impl L1DupTracker {
    /// Builds the tracker.
    pub fn new(cfg: L1Config, seed: u64) -> Self {
        let s = cfg.sample_size();
        let ell = cfg.duplication();
        let swor_cfg = SworConfig::new(s, cfg.num_sites);
        let r = swor_cfg.r();
        Self {
            cfg,
            s,
            ell,
            r,
            coord: SworCoordinator::new(swor_cfg, mix(seed, 0xC0)),
            threshold: 0.0,
            rng: Rng::new(mix(seed, 0x517E)),
            downs: Vec::new(),
            metrics: L1Metrics::default(),
        }
    }

    /// The duplication factor `ℓ` in force.
    pub fn duplication(&self) -> u64 {
        self.ell
    }

    /// The SWOR sample size `s` in force.
    pub fn sample_size(&self) -> usize {
        self.s
    }

    fn apply_downs(&mut self) {
        let k = self.cfg.num_sites as u64;
        for d in self.downs.drain(..) {
            self.metrics.broadcast_events += 1;
            self.metrics.down += k;
            if let DownMsg::UpdateEpoch { threshold } = d {
                if threshold > self.threshold {
                    self.threshold = threshold;
                }
            }
            // LevelSaturated is tracked by querying the coordinator (the
            // instant-delivery view is shared).
        }
    }

    /// Inserts the `ℓ` duplicates of one update, exactly.
    fn insert_duplicates(&mut self, item: Item) {
        let w = item.weight;
        let level = level_of(w, self.r);
        let mut remaining = self.ell;
        // Early phase: real early messages, one at a time, until the level
        // saturates (or duplicates run out).
        while remaining > 0 && !self.coord.is_level_saturated(level) {
            self.coord.receive(UpMsg::Early { item }, &mut self.downs);
            self.metrics.early += 1;
            remaining -= 1;
            self.apply_downs();
        }
        // Regular phase: geometric skips between threshold-clearing keys.
        while remaining > 0 {
            let p = p_key_above(w, self.threshold);
            let gap = geometric_trials(&mut self.rng, p);
            if gap > remaining {
                break;
            }
            remaining -= gap;
            let key = key_above(w, self.threshold, &mut self.rng);
            self.coord
                .receive(UpMsg::Regular { item, key }, &mut self.downs);
            self.metrics.regular += 1;
            self.apply_downs();
        }
    }

    /// The s-th largest key over the full query set (sample ∪ withheld).
    fn u_query(&self) -> Option<f64> {
        let q = self.coord.sample();
        if q.len() < self.s {
            return None;
        }
        q.last().map(|k| k.key)
    }
}

impl L1Estimator for L1DupTracker {
    fn observe(&mut self, _site: usize, item: Item) {
        // With instant broadcasts all sites share the same threshold and
        // saturation view, so the site index does not affect behaviour or
        // message counts.
        self.insert_duplicates(item);
    }

    fn estimate(&self) -> Option<f64> {
        // W̃ = s·u/ℓ (Algorithm 1's output step).
        self.u_query().map(|u| self.s as f64 * u / self.ell as f64)
    }

    fn messages(&self) -> u64 {
        self.metrics.total()
    }

    fn name(&self) -> &'static str {
        "this work (dup + weighted SWOR)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: literally insert every duplicate through a
    /// site-side exponential draw. Used to validate the batched collapse.
    struct NaiveDup {
        coord: SworCoordinator,
        threshold: f64,
        rng: Rng,
        early: u64,
        regular: u64,
        ell: u64,
        r: f64,
    }

    impl NaiveDup {
        fn new(s: usize, k: usize, ell: u64, seed: u64) -> Self {
            let cfg = SworConfig::new(s, k);
            let r = cfg.r();
            Self {
                coord: SworCoordinator::new(cfg, mix(seed, 0xC0)),
                threshold: 0.0,
                rng: Rng::new(mix(seed, 0xAB)),
                early: 0,
                regular: 0,
                ell,
                r,
            }
        }

        fn observe(&mut self, item: Item) {
            let mut downs = Vec::new();
            for _ in 0..self.ell {
                let level = level_of(item.weight, self.r);
                if !self.coord.is_level_saturated(level) {
                    self.coord.receive(UpMsg::Early { item }, &mut downs);
                    self.early += 1;
                } else {
                    let key = item.weight / self.rng.exp();
                    if key > self.threshold {
                        self.coord.receive(UpMsg::Regular { item, key }, &mut downs);
                        self.regular += 1;
                    }
                }
                for d in downs.drain(..) {
                    if let DownMsg::UpdateEpoch { threshold } = d {
                        self.threshold = self.threshold.max(threshold);
                    }
                }
            }
        }
    }

    #[test]
    fn batched_matches_naive_in_distribution() {
        // Same (s, k, ℓ), same stream; compare message counts and estimates
        // across independent seeds — means must agree within a few percent.
        let (s, k, ell) = (20usize, 2usize, 64u64);
        let items: Vec<Item> = (0..60u64)
            .map(|i| Item::new(i, 1.0 + (i % 7) as f64))
            .collect();
        let runs = 60u64;
        let (mut b_reg, mut n_reg) = (0.0f64, 0.0f64);
        let (mut b_u, mut n_u) = (0.0f64, 0.0f64);
        for t in 0..runs {
            let mut cfg = L1Config::new(0.2, 0.2, k);
            cfg.sample_size_override = Some(s);
            cfg.dup_override = Some(ell);
            let mut batched = L1DupTracker::new(cfg, 1000 + t);
            let mut naive = NaiveDup::new(s, k, ell, 5000 + t);
            for it in &items {
                batched.observe(0, *it);
                naive.observe(*it);
            }
            b_reg += batched.metrics.regular as f64;
            n_reg += naive.regular as f64;
            assert_eq!(
                batched.metrics.early, naive.early,
                "early counts are deterministic and must match exactly"
            );
            b_u += batched.u_query().unwrap();
            n_u += naive.coord.sample().last().unwrap().key;
        }
        let (b_reg, n_reg) = (b_reg / runs as f64, n_reg / runs as f64);
        let (b_u, n_u) = (b_u / runs as f64, n_u / runs as f64);
        assert!(
            (b_reg - n_reg).abs() < 0.15 * n_reg.max(10.0),
            "regular msg mean: batched {b_reg} vs naive {n_reg}"
        );
        assert!(
            (b_u - n_u).abs() < 0.1 * n_u,
            "u mean: batched {b_u} vs naive {n_u}"
        );
    }

    #[test]
    fn estimate_tracks_total_weight() {
        let cfg = L1Config::new(0.15, 0.2, 4);
        let mut t = L1DupTracker::new(cfg, 7);
        let mut rng = Rng::new(9);
        let mut true_w = 0.0;
        let mut worst: f64 = 0.0;
        for i in 0..400u64 {
            let w = 1.0 + rng.f64() * 4.0;
            true_w += w;
            t.observe((i % 4) as usize, Item::new(i, w));
            if i >= 20 {
                let est = t.estimate().expect("estimate available");
                worst = worst.max((est - true_w).abs() / true_w);
            }
        }
        assert!(worst < 0.3, "worst relative error {worst}");
    }

    #[test]
    fn config_formulas() {
        let cfg = L1Config::new(0.1, 0.05, 8);
        // s = ceil(10 ln(20) / 0.01) = ceil(2995.7..) = 2996
        assert_eq!(cfg.sample_size(), 2996);
        // ell = ceil(2996 / 0.2) = 14980
        assert_eq!(cfg.duplication(), 14980);
    }

    #[test]
    fn messages_grow_logarithmically() {
        let mut cfg = L1Config::new(0.2, 0.2, 4);
        cfg.sample_size_override = Some(50);
        cfg.dup_override = Some(200);
        let mut t = L1DupTracker::new(cfg, 11);
        let n1 = 500u64;
        for i in 0..n1 {
            t.observe((i % 4) as usize, Item::unit(i));
        }
        let m1 = t.messages();
        for i in n1..(n1 * 8) {
            t.observe((i % 4) as usize, Item::unit(i));
        }
        let m2 = t.messages();
        // 8x more items should cost far less than 8x more messages.
        assert!(
            (m2 - m1) < 2 * m1,
            "messages not logarithmic: {m1} then {m2}"
        );
    }
}
