//! Randomized L1 tracker in the style of Huang, Yi and Zhang \[23\] — the
//! best prior upper bound, `O((k + √k/ε)·log W)` expected messages, and the
//! second comparison row of the paper's Section 5 table.
//!
//! Reconstruction from the stated guarantees (the paper of \[23\] is not
//! reproduced here; see DESIGN.md §5): the protocol proceeds in *rounds*,
//! each spanning roughly a doubling of the total weight.
//!
//! * At a round start the coordinator learns the exact total `B` (one
//!   broadcast + one reply per site + one broadcast of the new signal rate:
//!   `3k` messages).
//! * During the round, each site emits an unbiased Bernoulli/Binomial
//!   *signal* per unit of arriving weight with rate `p = c·max(√k, 1/ε)/(ε·B)`;
//!   the coordinator's running estimate is `W̃ = B + (#signals)/p`, whose
//!   standard deviation stays below `ε·B/c'` throughout the round.
//! * When `W̃ ≥ 2B` the coordinator starts the next round.
//!
//! Expected signals per round: `p·B = c·max(√k, 1/ε)/ε`, and there are
//! `log₂ W` rounds — matching the `O((k + √k/ε)·log W)` bound (the `1/ε²`
//! variant of the rate keeps the estimate within `ε` even when `k < 1/ε²`,
//! which is the regime \[23\] is optimal in).

use dwrs_core::math::binomial::binomial;
use dwrs_core::rng::{mix, Rng};
use dwrs_core::Item;

use super::L1Estimator;

/// Signal-rate safety constant (variance margin).
const RATE_CONST: f64 = 4.0;

/// HYZ12-style randomized L1 tracker.
#[derive(Debug)]
pub struct HyzTracker {
    eps: f64,
    k: usize,
    /// Exact local totals (known to each site).
    local: Vec<f64>,
    /// Round base: exact total weight at round start.
    base: f64,
    /// Current signal rate per unit weight.
    rate: f64,
    /// Signals received this round.
    signals: u64,
    /// Per-site fractional-weight carry for signal generation.
    carry: Vec<f64>,
    rng: Rng,
    messages: u64,
    started: bool,
}

impl HyzTracker {
    /// Creates a tracker with accuracy `ε` over `k` sites.
    pub fn new(eps: f64, k: usize, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        assert!(k >= 1);
        Self {
            eps,
            k,
            local: vec![0.0; k],
            base: 0.0,
            rate: 0.0,
            signals: 0,
            carry: vec![0.0; k],
            rng: Rng::new(mix(seed, 0x485A)),
            messages: 0,
            started: false,
        }
    }

    /// Exact synchronization: coordinator polls all sites (`3k` messages)
    /// and restarts the round.
    fn sync(&mut self) {
        self.messages += 3 * self.k as u64;
        self.base = self.local.iter().sum();
        self.signals = 0;
        let scale = (self.k as f64).sqrt().max(1.0 / self.eps);
        self.rate = if self.base > 0.0 {
            (RATE_CONST * scale / (self.eps * self.base)).min(1.0)
        } else {
            1.0
        };
        self.started = true;
    }

    fn running_estimate(&self) -> f64 {
        if self.rate > 0.0 {
            self.base + self.signals as f64 / self.rate
        } else {
            self.base
        }
    }
}

impl L1Estimator for HyzTracker {
    fn observe(&mut self, site: usize, item: Item) {
        if !self.started {
            // The very first item triggers the initial synchronization
            // (site must speak: it cannot know it is not alone).
            self.local[site] += item.weight;
            self.messages += 1;
            self.sync();
            return;
        }
        self.local[site] += item.weight;
        // Unbiased signals: one Bernoulli(rate) per unit of weight, the
        // fractional remainder carried per site.
        let amount = item.weight + self.carry[site];
        let units = amount.floor();
        self.carry[site] = amount - units;
        let mut emitted = 0u64;
        if units > 0.0 && self.rate > 0.0 {
            emitted = binomial(&mut self.rng, units as u64, self.rate);
        }
        if emitted > 0 {
            self.messages += emitted;
            self.signals += emitted;
        }
        if self.running_estimate() >= 2.0 * self.base {
            self.sync();
        }
    }

    fn estimate(&self) -> Option<f64> {
        if self.started {
            Some(self.running_estimate())
        } else {
            None
        }
    }

    fn messages(&self) -> u64 {
        self.messages
    }

    fn name(&self) -> &'static str {
        "HYZ12-style randomized"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l1::run_tracker;

    fn unit_stream(n: u64, k: usize) -> Vec<(usize, Item)> {
        (0..n)
            .map(|i| ((i % k as u64) as usize, Item::unit(i)))
            .collect()
    }

    #[test]
    fn estimate_stays_close() {
        let k = 64; // k ≥ 1/ε² regime with ε = 0.2
        let stream = unit_stream(100_000, k);
        let mut t = HyzTracker::new(0.2, k, 1);
        let (err, _) = run_tracker(&mut t, &stream, 500);
        assert!(err < 0.25, "max relative error {err}");
    }

    #[test]
    fn messages_sublinear() {
        let k = 16;
        let n = 200_000u64;
        let stream = unit_stream(n, k);
        let mut t = HyzTracker::new(0.1, k, 2);
        let (_, msgs) = run_tracker(&mut t, &stream, 10_000);
        assert!(msgs < n / 10, "messages {msgs} vs n {n}");
    }

    #[test]
    fn sqrt_k_scaling_visible() {
        // At fixed ε in the k ≥ 1/ε² regime, messages/log W should grow
        // roughly like k (sync term) + √k/ε; doubling k by 16 must increase
        // messages by far less than 16x when the √k term dominates.
        let n = 100_000u64;
        let eps = 0.05;
        let run = |k: usize, seed: u64| {
            let stream = unit_stream(n, k);
            let mut t = HyzTracker::new(eps, k, seed);
            let (_, msgs) = run_tracker(&mut t, &stream, n as usize);
            msgs as f64
        };
        let m1 = run(4, 3);
        let m2 = run(64, 4);
        assert!(
            m2 / m1 < 8.0,
            "16x sites increased messages {m1} -> {m2} (ratio {})",
            m2 / m1
        );
    }

    #[test]
    fn estimate_none_before_any_item() {
        let t = HyzTracker::new(0.1, 4, 5);
        assert!(t.estimate().is_none());
    }
}
