//! Deterministic `(1+ε)` L1 tracker — the "\[14\] + folklore" baseline row of
//! the paper's Section 5 table, with `O(k·log(W)/ε)` messages.
//!
//! Each site reports its local total whenever it has grown by a factor
//! `(1+ε)` since the last report (and on its first item). The coordinator
//! sums the last reports; each site's unreported increment is at most an
//! `ε/(1+ε) < ε` fraction of its local total, so the sum is a deterministic
//! `(1±ε)` approximation at all times — no failure probability at all, paid
//! for with a `1/ε` factor in messages.

use dwrs_core::Item;

use super::L1Estimator;

/// Deterministic per-site threshold tracker.
#[derive(Debug)]
pub struct FolkloreTracker {
    eps: f64,
    local: Vec<f64>,
    reported: Vec<f64>,
    sum_reported: f64,
    messages: u64,
}

impl FolkloreTracker {
    /// Creates a tracker with accuracy `ε` over `k` sites.
    pub fn new(eps: f64, k: usize) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        assert!(k >= 1);
        Self {
            eps,
            local: vec![0.0; k],
            reported: vec![0.0; k],
            sum_reported: 0.0,
            messages: 0,
        }
    }
}

impl L1Estimator for FolkloreTracker {
    fn observe(&mut self, site: usize, item: Item) {
        self.local[site] += item.weight;
        let must_report = self.reported[site] == 0.0
            || self.local[site] >= (1.0 + self.eps) * self.reported[site];
        if must_report {
            self.messages += 1;
            self.sum_reported += self.local[site] - self.reported[site];
            self.reported[site] = self.local[site];
        }
    }

    fn estimate(&self) -> Option<f64> {
        if self.sum_reported > 0.0 {
            Some(self.sum_reported)
        } else {
            None
        }
    }

    fn messages(&self) -> u64 {
        self.messages
    }

    fn name(&self) -> &'static str {
        "folklore (1+eps) thresholds"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bounded_at_all_times() {
        let eps = 0.1;
        let k = 4;
        let mut t = FolkloreTracker::new(eps, k);
        let mut rng = dwrs_core::Rng::new(3);
        let mut true_w = 0.0;
        for i in 0..20_000u64 {
            let w = 1.0 + rng.f64() * 9.0;
            t.observe((i % k as u64) as usize, Item::new(i, w));
            true_w += w;
            let est = t.estimate().unwrap();
            let err = (est - true_w).abs() / true_w;
            assert!(err <= eps, "time {i}: err {err}");
        }
    }

    #[test]
    fn messages_scale_inverse_eps() {
        let k = 4;
        let n = 50_000u64;
        let run = |eps: f64| {
            let mut t = FolkloreTracker::new(eps, k);
            for i in 0..n {
                t.observe((i % k as u64) as usize, Item::unit(i));
            }
            t.messages()
        };
        let coarse = run(0.2);
        let fine = run(0.02);
        let ratio = fine as f64 / coarse as f64;
        // ~10x more messages for 10x smaller eps (log1p(eps) ≈ eps).
        assert!(
            ratio > 5.0 && ratio < 16.0,
            "ratio {ratio} (coarse {coarse}, fine {fine})"
        );
    }

    #[test]
    fn estimate_none_before_first_item() {
        let t = FolkloreTracker::new(0.1, 2);
        assert!(t.estimate().is_none());
    }
}
