//! Piggyback L1 tracker — an implementation extension beyond the paper.
//!
//! A deployment that already runs the weighted SWOR protocol gets an L1
//! estimate **for free**: the coordinator's query answer is *exactly* the
//! top-`s` of one independent exponential key per stream item (Theorem 3's
//! invariant), so the rank-conditioning Horvitz–Thompson estimator of
//! [`dwrs_core::estimate`] applies verbatim:
//!
//! `W̃ = Σ_{top s-1} w_i / (1 - e^{-w_i/τ})`,  `τ` = the s-th sample key.
//!
//! Unbiasedness needs no assumptions on the weight distribution: extremely
//! heavy items simply sit in the sample with enormous keys and inclusion
//! probability ≈ 1, i.e. they are counted exactly (the level sets deliver
//! them into the sample; compare experiment E15b, where the *order
//! statistic* estimator `u·s` that the paper's Theorem 6 analysis builds on
//! collapses without withholding).
//!
//! Contrast with the paper's Theorem 6 tracker: that one *chooses* `s` and
//! a duplication factor `ℓ` to hit a target `ε`, paying `O(log(εW)/ε²)`
//! extra messages; the piggyback tracker spends **zero** extra messages but
//! its accuracy is fixed at `~1/√s` by the sampling deployment. It is the
//! "sampling gives you counting for free" companion, not a replacement.

use dwrs_core::estimate::total_weight_estimate;
use dwrs_core::swor::{SworConfig, SworCoordinator, SworSite};
use dwrs_core::Item;
use dwrs_sim::{build_swor, Runner};

use super::L1Estimator;

/// L1 estimate piggybacked on a weighted SWOR deployment.
#[derive(Debug)]
pub struct PiggybackL1Tracker {
    runner: Runner<SworSite, SworCoordinator>,
    observed: u64,
    s: usize,
}

impl PiggybackL1Tracker {
    /// Builds the tracker around a standard SWOR deployment of sample size
    /// `s` over `k` sites. Accuracy is `O(1/√s)`; pick `s ≈ 1/ε²` for a
    /// target relative error `ε`.
    pub fn new(s: usize, k: usize, seed: u64) -> Self {
        Self {
            runner: build_swor(SworConfig::new(s, k), seed),
            observed: 0,
            s,
        }
    }

    /// Access to the underlying sample — the tracker *is* a sampler; the L1
    /// estimate rides along.
    pub fn sample(&self) -> Vec<dwrs_core::Keyed> {
        self.runner.coordinator.sample()
    }
}

impl L1Estimator for PiggybackL1Tracker {
    fn observe(&mut self, site: usize, item: Item) {
        self.observed += 1;
        self.runner.step(site, item);
    }

    fn estimate(&self) -> Option<f64> {
        if self.observed == 0 {
            return None;
        }
        let sample = self.runner.coordinator.sample();
        Some(total_weight_estimate(
            &sample,
            (self.observed as usize) < self.s,
        ))
    }

    fn messages(&self) -> u64 {
        self.runner.metrics.total()
    }

    fn name(&self) -> &'static str {
        "piggyback (extension; free w/ sampling)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwrs_core::Rng;

    #[test]
    fn estimate_tracks_weight_within_sqrt_s() {
        let s = 256usize; // 1/sqrt(s) ≈ 6% expected error scale
        let k = 8usize;
        let mut tracker = PiggybackL1Tracker::new(s, k, 42);
        let mut rng = Rng::new(7);
        let mut true_w = 0.0;
        let mut worst: f64 = 0.0;
        for i in 0..30_000u64 {
            let w = 1.0 + rng.f64() * 9.0;
            true_w += w;
            tracker.observe((i % k as u64) as usize, Item::new(i, w));
            if i > 2_000 && i % 1_000 == 0 {
                let est = tracker.estimate().expect("estimate");
                worst = worst.max((est - true_w).abs() / true_w);
            }
        }
        assert!(worst < 0.3, "worst relative error {worst}");
        let final_err = (tracker.estimate().unwrap() - true_w).abs() / true_w;
        assert!(final_err < 0.2, "final error {final_err}");
    }

    #[test]
    fn estimator_is_unbiased_across_runs() {
        let s = 64usize;
        let k = 4usize;
        let weights: Vec<f64> = (0..800u64).map(|i| 1.0 + (i % 9) as f64).collect();
        let true_w: f64 = weights.iter().sum();
        let runs = 400u64;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for r in 0..runs {
            let mut tracker = PiggybackL1Tracker::new(s, k, 10_000 + r);
            for (i, &w) in weights.iter().enumerate() {
                tracker.observe(i % k, Item::new(i as u64, w));
            }
            let est = tracker.estimate().unwrap();
            sum += est;
            sumsq += est * est;
        }
        let mean = sum / runs as f64;
        let var = sumsq / runs as f64 - mean * mean;
        let se = (var / runs as f64).sqrt();
        assert!(
            (mean - true_w).abs() < 5.0 * se + 0.005 * true_w,
            "mean {mean} vs {true_w} (se {se})"
        );
    }

    #[test]
    fn costs_no_more_than_plain_sampling() {
        let s = 64usize;
        let k = 8usize;
        let items: Vec<Item> = (0..20_000u64)
            .map(|i| Item::new(i, 1.0 + (i % 7) as f64))
            .collect();
        let mut tracker = PiggybackL1Tracker::new(s, k, 3);
        for (i, it) in items.iter().enumerate() {
            tracker.observe(i % k, *it);
        }
        let mut plain = build_swor(SworConfig::new(s, k), 3);
        for (i, it) in items.iter().enumerate() {
            plain.step(i % k, *it);
        }
        assert_eq!(
            tracker.messages(),
            plain.metrics.total(),
            "piggybacking must be free"
        );
    }

    #[test]
    fn accurate_on_heavy_streams() {
        // The scenario that destroys the naive u·s estimator (E15b): s/2
        // giants carrying 99.9% of the weight. The HT estimate stays
        // accurate because the giants are in the sample (huge keys) and
        // counted exactly.
        let s = 64usize;
        let k = 4usize;
        let items =
            dwrs_workloads::few_heavy(10_000, s / 2, 0.999, dwrs_workloads::Placement::Shuffled, 5);
        let true_w: f64 = items.iter().map(|i| i.weight).sum();
        let mut tracker = PiggybackL1Tracker::new(s, k, 9);
        for (i, it) in items.iter().enumerate() {
            tracker.observe(i % k, *it);
        }
        let est = tracker.estimate().unwrap();
        let err = (est - true_w).abs() / true_w;
        assert!(err < 0.1, "error {err} on heavy stream");
    }

    #[test]
    fn none_before_first_item() {
        let tracker = PiggybackL1Tracker::new(8, 2, 1);
        assert!(tracker.estimate().is_none());
    }
}
