//! # dwrs-apps
//!
//! The paper's two applications of distributed weighted SWOR, plus the
//! extension it leaves open:
//!
//! * [`residual_hh`] — continuous tracking of **heavy hitters with residual
//!   error** (Section 4, Theorem 4): identify every item whose weight is an
//!   `ε` fraction of the stream *after* the top `1/ε` items are removed.
//! * [`l1`] — **L1/count tracking** (Section 5, Theorem 6): the coordinator
//!   continuously holds `W̃ = (1±ε)·W`. Includes the paper's
//!   duplication-based tracker and the two prior-work baselines forming the
//!   Section 5 comparison table.
//! * [`sliding_window`] — weighted SWOR over a sequence-based sliding
//!   window, the extension named in the paper's conclusion as an open
//!   problem.
//!
//! Each application also ships its **runtime protocol nodes** — site /
//! coordinator implementations of the `dwrs_sim` node traits
//! ([`L1Site`], [`WindowSite`]/[`WindowCoordinator`]; residual heavy
//! hitters run on the stock SWOR nodes) — so `dwrs-runtime` executes them
//! as first-class `Query`s on every engine and topology
//! (`dwrs run --query {l1,rhh,window}`), not only in centralized
//! simulation. The streaming [`ResidualOracle`] provides the exact
//! heavy-hitter answer for recall checks at any stream length.
//!
//! The [`live`] module extracts each application's answer from a
//! coordinator's *current* sample mid-stream — the shared implementation
//! behind both end-of-run answers and the daemon's live queries.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod l1;
pub mod live;
pub mod residual_hh;
pub mod sliding_window;

pub use l1::{
    FolkloreTracker, HyzTracker, L1Config, L1DupTracker, L1Estimator, L1Site, PiggybackL1Tracker,
};
pub use residual_hh::{
    exact_residual_heavy_hitters, recall, ResidualHeavyHitters, ResidualHhConfig, ResidualOracle,
};
pub use sliding_window::{RetainedSet, SlidingWindowSwor, WindowCoordinator, WindowSite, WindowUp};
