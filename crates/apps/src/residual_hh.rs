//! Heavy hitters with residual error (paper Section 4, Theorem 4).
//!
//! Definition 6: at any time `t`, with probability `1-δ` the algorithm must
//! return a set of `O(1/ε)` items containing **every** item with
//! `x_i ≥ ε·‖x_tail(1/ε)‖₁`, where the tail norm removes the `1/ε` largest
//! coordinates. This is strictly stronger than the usual `ℓ₁` guarantee and
//! is exactly where sampling *without* replacement beats sampling with
//! replacement: a few gigantic items swallow every with-replacement draw but
//! occupy only a few without-replacement slots.
//!
//! Theorem 4's algorithm is a thin layer over weighted SWOR: run it with
//! `s = 6·ln(1/(εδ))/ε` and answer queries with the top `2/ε` sample items
//! by weight. Expected messages
//! `O((k/log k + log(1/(εδ))/ε)·log(εW))`.
//!
//! # Example
//!
//! ```
//! use dwrs_apps::residual_hh::{ResidualHeavyHitters, ResidualHhConfig};
//! use dwrs_core::Item;
//!
//! let mut tracker = ResidualHeavyHitters::new(ResidualHhConfig::new(0.25, 0.1, 4), 7);
//! for t in 0..5_000u64 {
//!     // A couple of giants plus unit traffic.
//!     let w = if t % 2_000 == 0 { 1e6 } else { 1.0 };
//!     tracker.observe((t % 4) as usize, Item::new(t, w));
//! }
//! let candidates = tracker.query();
//! assert!(!candidates.is_empty());
//! assert!(candidates.len() <= 8); // 2/eps
//! ```

use dwrs_core::swor::{SworConfig, SworCoordinator, SworSite};
use dwrs_core::{Item, ItemId};
use dwrs_sim::{build_swor, Runner};

/// Parameters of the residual heavy hitter tracker.
#[derive(Clone, Debug)]
pub struct ResidualHhConfig {
    /// Residual heaviness threshold `ε`.
    pub eps: f64,
    /// Failure probability `δ` per query time.
    pub delta: f64,
    /// Number of sites `k`.
    pub num_sites: usize,
    /// Overrides the derived sample size (experiments only).
    pub sample_size_override: Option<usize>,
}

impl ResidualHhConfig {
    /// Standard configuration.
    pub fn new(eps: f64, delta: f64, num_sites: usize) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "ε must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
        Self {
            eps,
            delta,
            num_sites,
            sample_size_override: None,
        }
    }

    /// Theorem 4's sample size `s = ceil(6·ln(1/(εδ))/ε)`.
    pub fn sample_size(&self) -> usize {
        if let Some(s) = self.sample_size_override {
            return s;
        }
        let s = 6.0 * (1.0 / (self.eps * self.delta)).ln() / self.eps;
        (s.ceil() as usize).max(1)
    }

    /// Size of the returned candidate set, `2/ε`.
    pub fn output_size(&self) -> usize {
        ((2.0 / self.eps).ceil() as usize).max(1)
    }
}

/// Distributed tracker of heavy hitters with residual error.
#[derive(Debug)]
pub struct ResidualHeavyHitters {
    cfg: ResidualHhConfig,
    runner: Runner<SworSite, SworCoordinator>,
}

impl ResidualHeavyHitters {
    /// Builds the tracker (sites + coordinator under the simulator).
    pub fn new(cfg: ResidualHhConfig, seed: u64) -> Self {
        let swor = SworConfig::new(cfg.sample_size(), cfg.num_sites);
        Self {
            cfg,
            runner: build_swor(swor, seed),
        }
    }

    /// Feeds one item observed at `site`.
    pub fn observe(&mut self, site: usize, item: Item) {
        self.runner.step(site, item);
    }

    /// Current candidate set: the top `2/ε` sample items by **weight**
    /// (Theorem 4's output step).
    pub fn query(&self) -> Vec<Item> {
        let mut sample: Vec<Item> = self
            .runner
            .coordinator
            .sample()
            .iter()
            .map(|k| k.item)
            .collect();
        sample.sort_by(|a, b| b.weight.total_cmp(&a.weight));
        sample.truncate(self.cfg.output_size());
        sample
    }

    /// Total messages spent so far.
    pub fn messages(&self) -> u64 {
        self.runner.metrics.total()
    }

    /// Underlying message metrics.
    pub fn metrics(&self) -> &dwrs_sim::Metrics {
        &self.runner.metrics
    }

    /// The configuration in force.
    pub fn config(&self) -> &ResidualHhConfig {
        &self.cfg
    }
}

/// Streaming exact oracle for Definition 6: maintains the top-`1/ε` head
/// weights, the residual mass, and a pruned candidate set, in
/// `O(1/ε + candidates)` memory — so heavy-hitter recall can be checked
/// against the exact answer on streams far too long to materialize.
///
/// Soundness of pruning: the residual `‖x_tail(1/ε)‖₁` is nondecreasing in
/// time (a new item either joins the head set, displacing a weight into
/// the residual, or adds to the residual directly), so an item with
/// `w < ε·residual_now` can never satisfy `w ≥ ε·residual_final` — it is
/// safe to drop at arrival or at any later prune. Assumes distinct ids, as
/// produced by the workload generators.
#[derive(Debug)]
pub struct ResidualOracle {
    eps: f64,
    /// Head capacity `t = ⌊1/ε⌋`.
    t: usize,
    /// Min-heap of the top-`t` weights seen.
    heads: std::collections::BinaryHeap<std::cmp::Reverse<ordered::F64>>,
    /// Total weight outside the current head set.
    residual: f64,
    /// Survivors of the arrival-time filter, pruned on doubling.
    candidates: Vec<Item>,
    prune_at: usize,
    items: u64,
}

/// Total order wrapper so weights can live in a heap.
mod ordered {
    /// An `f64` ordered by `total_cmp` (weights are finite and positive).
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct F64(pub f64);
    impl Eq for F64 {}
    #[allow(clippy::non_canonical_partial_ord_impl)]
    impl PartialOrd for F64 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.0.total_cmp(&other.0))
        }
    }
    impl Ord for F64 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
}

impl ResidualOracle {
    /// Creates the oracle for residual threshold `ε ∈ (0, 1)`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "ε must be in (0,1)");
        Self {
            eps,
            t: (1.0 / eps).floor() as usize,
            heads: std::collections::BinaryHeap::new(),
            residual: 0.0,
            candidates: Vec::new(),
            prune_at: 64,
            items: 0,
        }
    }

    /// Feeds the next stream item.
    pub fn observe(&mut self, item: Item) {
        use std::cmp::Reverse;
        self.items += 1;
        let w = item.weight;
        if self.heads.len() < self.t {
            self.heads.push(Reverse(ordered::F64(w)));
        } else {
            match self.heads.peek() {
                Some(&Reverse(ordered::F64(min))) if w > min => {
                    self.heads.pop();
                    self.residual += min;
                    self.heads.push(Reverse(ordered::F64(w)));
                }
                _ => self.residual += w,
            }
        }
        // Arrival-time filter: w < ε·residual_now can never qualify.
        if self.residual == 0.0 || w >= self.eps * self.residual {
            self.candidates.push(item);
            if self.candidates.len() >= self.prune_at {
                self.prune();
            }
        }
    }

    fn prune(&mut self) {
        let thr = self.eps * self.residual;
        if self.residual > 0.0 {
            self.candidates.retain(|i| i.weight >= thr);
        }
        self.prune_at = (self.candidates.len() * 2).max(64);
    }

    /// Items observed so far.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// The exact required set right now: ids with
    /// `w ≥ ε·‖x_tail(1/ε)‖₁` (empty while the residual is zero,
    /// mirroring [`exact_residual_heavy_hitters`]).
    pub fn required(&self) -> Vec<ItemId> {
        if self.residual <= 0.0 {
            return Vec::new();
        }
        let thr = self.eps * self.residual;
        self.candidates
            .iter()
            .filter(|i| i.weight >= thr)
            .map(|i| i.id)
            .collect()
    }

    /// Current residual mass `‖x_tail(1/ε)‖₁`.
    pub fn residual(&self) -> f64 {
        self.residual
    }
}

/// Offline oracle: the ids of all items in `items` (a stream prefix) with
/// `x_i ≥ ε·‖x_tail(1/ε)‖₁` (Definition 6). Assumes distinct ids, as
/// produced by the workload generators.
pub fn exact_residual_heavy_hitters(items: &[Item], eps: f64) -> Vec<ItemId> {
    assert!(eps > 0.0 && eps < 1.0);
    if items.is_empty() {
        return Vec::new();
    }
    let t = (1.0 / eps).floor() as usize;
    let mut weights: Vec<f64> = items.iter().map(|i| i.weight).collect();
    weights.sort_by(|a, b| b.total_cmp(a));
    let residual: f64 = weights.iter().skip(t).sum();
    let threshold = eps * residual;
    items
        .iter()
        .filter(|i| i.weight >= threshold && threshold > 0.0)
        .map(|i| i.id)
        .collect()
}

/// Recall of `got` against the required set `want` (1.0 when `want` is
/// empty).
pub fn recall(want: &[ItemId], got: &[Item]) -> f64 {
    if want.is_empty() {
        return 1.0;
    }
    let got_ids: std::collections::HashSet<ItemId> = got.iter().map(|i| i.id).collect();
    let hit = want.iter().filter(|id| got_ids.contains(id)).count();
    hit as f64 / want.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_formula() {
        let cfg = ResidualHhConfig::new(0.1, 0.05, 8);
        // 6 * ln(1/0.005) / 0.1 = 6 * 5.298 / 0.1 ≈ 318
        assert_eq!(cfg.sample_size(), 318);
        assert_eq!(cfg.output_size(), 20);
    }

    #[test]
    fn oracle_identifies_residual_hitters() {
        // Two gigantic items + one residual-heavy item + light tail.
        let mut items = vec![Item::new(0, 1_000_000.0), Item::new(1, 500_000.0)];
        items.push(Item::new(2, 60.0)); // residual heavy
        for i in 3..103 {
            items.push(Item::new(i, 1.0));
        }
        // eps = 0.5: tail(2) removes the two giants; residual = 160;
        // threshold = 80 — only giants qualify... choose eps smaller.
        let eps = 0.35;
        let want = exact_residual_heavy_hitters(&items, eps);
        // tail(1/0.35 -> 2) removes ids 0,1; residual = 160; thr = 56.
        assert!(want.contains(&0) && want.contains(&1) && want.contains(&2));
        assert_eq!(want.len(), 3);
    }

    #[test]
    fn streaming_oracle_matches_batch_oracle() {
        // The streaming oracle must return exactly the batch oracle's set
        // (as sets — order differs) on assorted streams.
        for (seed, n, top) in [(1u64, 500usize, 3usize), (9, 2_000, 1), (42, 1_000, 5)] {
            for eps in [0.1, 0.25, 0.4] {
                let items = dwrs_workloads::residual_skew(n, top, seed);
                let mut oracle = ResidualOracle::new(eps);
                for it in &items {
                    oracle.observe(*it);
                }
                let mut want = exact_residual_heavy_hitters(&items, eps);
                let mut got = oracle.required();
                want.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, want, "eps {eps} seed {seed}");
                assert_eq!(oracle.items(), n as u64);
            }
        }
        // And on a flat stream (no giants) for the degenerate shape.
        let items: Vec<Item> = (0..400u64).map(Item::unit).collect();
        let mut oracle = ResidualOracle::new(0.2);
        for it in &items {
            oracle.observe(*it);
        }
        let mut want = exact_residual_heavy_hitters(&items, 0.2);
        let mut got = oracle.required();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn streaming_oracle_memory_stays_bounded() {
        // 200k unit items: candidates must stay near t + 1/ε, not O(n).
        let mut oracle = ResidualOracle::new(0.1);
        for i in 0..200_000u64 {
            oracle.observe(Item::unit(i));
        }
        assert!(
            oracle.candidates.len() < 1_000,
            "candidate set grew to {}",
            oracle.candidates.len()
        );
    }

    #[test]
    fn recall_counts_hits() {
        let want = vec![1, 2, 3, 4];
        let got = vec![Item::new(2, 1.0), Item::new(4, 1.0), Item::new(9, 1.0)];
        assert!((recall(&want, &got) - 0.5).abs() < 1e-12);
        assert_eq!(recall(&[], &got), 1.0);
    }

    #[test]
    fn tracker_catches_residual_hitters_on_skewed_stream() {
        // Small-scale version of experiment E9.
        let eps = 0.25;
        let cfg = ResidualHhConfig::new(eps, 0.1, 4);
        let mut tracker = ResidualHeavyHitters::new(cfg, 42);
        let items = dwrs_workloads::residual_skew(400, 3, 7);
        for (t, it) in items.iter().enumerate() {
            tracker.observe(t % 4, *it);
        }
        let want = exact_residual_heavy_hitters(&items, eps);
        assert!(!want.is_empty());
        let got = tracker.query();
        let r = recall(&want, &got);
        assert!(r >= 0.99, "recall {r} with want {want:?}");
    }

    #[test]
    fn swr_baseline_misses_residual_hitters() {
        // The paper's motivation: with-replacement sampling only ever sees
        // the giants on skewed streams. Same sample budget, same stream.
        use dwrs_core::centralized::{OnlineWeightedSwr, StreamSampler};
        let eps = 0.25;
        let cfg = ResidualHhConfig::new(eps, 0.1, 4);
        let s = cfg.sample_size();
        let items = dwrs_workloads::residual_skew(400, 3, 7);
        let want = exact_residual_heavy_hitters(&items, eps);
        // Average SWR recall over several runs.
        let mut total_recall = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let mut swr = OnlineWeightedSwr::new(s, 1000 + seed);
            for it in &items {
                swr.observe(*it);
            }
            let mut got = swr.sample();
            got.sort_by(|a, b| b.weight.total_cmp(&a.weight));
            got.dedup_by_key(|i| i.id);
            total_recall += recall(&want, &got);
        }
        let avg = total_recall / runs as f64;
        assert!(
            avg < 0.9,
            "SWR unexpectedly caught residual hitters: avg recall {avg}"
        );
    }
}
