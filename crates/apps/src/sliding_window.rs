//! Weighted SWOR over a sequence-based **sliding window** — the extension
//! the paper's conclusion poses as an open problem ("extend our algorithm
//! for weighted sampling to the sliding window model").
//!
//! The idea follows the precision-sampling view: every item keeps its key
//! `v = w/t`; an item can appear in the top-`s` of **some** future window
//! only if fewer than `s` *later* items have larger keys (later items are in
//! every window that contains it). The retained set — keys that are
//! "s-undominated from the right" — has expected size `O(s·log(n/s))`, and
//! the window sample is read off by filtering to the window and taking the
//! top `s` keys.
//!
//! Two layers live here:
//!
//! * [`RetainedSet`] / [`SlidingWindowSwor`] — the centralized structure,
//!   clocked either by arrival count (`observe`) or by an explicit global
//!   arrival index (`observe_at`). Pruning is **amortized**: dominated
//!   entries are only garbage-collected when the set doubles, which keeps
//!   the per-item cost at `O(s)` amortized without changing any sample
//!   (un-pruned dominated entries can never reach a top-`s`).
//! * [`WindowSite`] / [`WindowCoordinator`] — the distributed runtime
//!   nodes. Each site runs the retained-set filter over its own substream
//!   (dominance at a site implies global dominance: later items at the
//!   site are later — hence co-windowed — globally) and ships its retained
//!   candidates at end-of-stream via [`dwrs_sim::SiteNode::finish`]; the
//!   coordinator merges, expires by the global arrival index, and answers
//!   with the exact window sample. Message cost is `O(s·log(n_i/s))` per
//!   site, not `O(n_i)`. Requires item ids to be the global arrival order
//!   (true for every built-in workload generator and their CSV round
//!   trips); a message-optimal *continuously tracking* version remains
//!   open, as in the paper.

use std::collections::VecDeque;

use dwrs_core::framed::FrameCodec;
use dwrs_core::keys::assign_key;
use dwrs_core::rng::Rng;
use dwrs_core::swor::wire::WireError;
use dwrs_core::{Item, Keyed};
use dwrs_sim::{CoordinatorNode, Meter, NoDown, Outbox, SiteNode};

/// The "s-undominated from the right" candidate structure, clocked by a
/// monotone arrival index. Exact at every query; pruning is amortized.
#[derive(Debug)]
pub struct RetainedSet {
    window: u64,
    s: usize,
    /// Retained `(arrival_index, keyed)` in arrival order.
    retained: VecDeque<(u64, Keyed)>,
    /// Amortization mark: prune when the set grows past this.
    prune_at: usize,
    /// Largest arrival index observed.
    max_index: u64,
}

impl RetainedSet {
    /// Creates a retained set for samples of size `s` over the last
    /// `window` arrivals.
    pub fn new(s: usize, window: u64) -> Self {
        assert!(s >= 1 && window >= 1);
        Self {
            window,
            s,
            retained: VecDeque::new(),
            prune_at: 64,
            max_index: 0,
        }
    }

    /// Number of retained entries (between prunes this may transiently
    /// reach twice the `O(s·log(window/s))` steady state).
    pub fn len(&self) -> usize {
        self.retained.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.retained.is_empty()
    }

    /// Largest arrival index observed so far.
    pub fn max_index(&self) -> u64 {
        self.max_index
    }

    /// Inserts a keyed item with its arrival index. Indices are normally
    /// non-decreasing (arrival order — the O(1) fast path); an
    /// out-of-order index (e.g. a hand-edited CSV whose ids are not the
    /// arrival sequence) is placed at its sorted position, so the
    /// structure stays correct for the id-ordered window instead of
    /// silently mis-expiring (or panicking mid-run).
    pub fn insert(&mut self, index: u64, keyed: Keyed) {
        self.max_index = self.max_index.max(index);
        if self.retained.back().is_none_or(|&(t, _)| t <= index) {
            self.retained.push_back((index, keyed));
        } else {
            let pos = self.retained.partition_point(|&(t, _)| t <= index);
            self.retained.insert(pos, (index, keyed));
        }
        self.expire();
        if self.retained.len() >= self.prune_at {
            self.prune();
            self.prune_at = (self.retained.len() * 2).max(64);
        }
    }

    /// Folds another retained set's entries into this one (coordinator
    /// merge). Entries are interleaved by arrival index to restore global
    /// arrival order.
    pub fn merge_from(&mut self, entries: impl IntoIterator<Item = (u64, Keyed)>) {
        let mut merged: Vec<(u64, Keyed)> = self.retained.drain(..).collect();
        merged.extend(entries);
        merged.sort_by_key(|&(t, _)| t);
        for (t, _) in &merged {
            self.max_index = self.max_index.max(*t);
        }
        self.retained = merged.into();
        self.expire();
        self.prune();
        self.prune_at = (self.retained.len() * 2).max(64);
    }

    /// Whether the entry at arrival index `t` has left the window of the
    /// newest observed index: the window is the last `window` arrivals,
    /// i.e. indices `t` with `t + window > max_index`. Phrased additively
    /// so it is correct for 0-based clocks too (`max_index - window`
    /// saturating at 0 used to expire index 0 while it was still
    /// in-window).
    fn expired(&self, t: u64) -> bool {
        t.saturating_add(self.window) <= self.max_index
    }

    /// Drops entries that left the window of the newest observed index.
    fn expire(&mut self) {
        while let Some(&(t, _)) = self.retained.front() {
            if self.expired(t) {
                self.retained.pop_front();
            } else {
                break;
            }
        }
    }

    /// Re-establishes the dominance invariant: walk from newest to oldest,
    /// keeping an item iff fewer than `s` kept-later items have larger keys
    /// (equivalently: its key beats the s-th largest among later keys).
    fn prune(&mut self) {
        let mut later_keys: Vec<f64> = Vec::with_capacity(self.s);
        let mut keep = VecDeque::with_capacity(self.retained.len());
        for &(t, keyed) in self.retained.iter().rev() {
            let dominated = later_keys.len() >= self.s && keyed.key <= later_keys[self.s - 1];
            if !dominated {
                keep.push_front((t, keyed));
                // Insert into the sorted (descending) top-s of later keys.
                let pos = later_keys.partition_point(|&k| k > keyed.key);
                if pos < self.s {
                    later_keys.insert(pos, keyed.key);
                    later_keys.truncate(self.s);
                }
            }
        }
        self.retained = keep;
    }

    /// The weighted SWOR of the current window: top-`s` keys among retained
    /// in-window items. Exact whether or not a prune is pending — dominated
    /// entries are beaten by `s` in-window keys by construction.
    pub fn sample(&self) -> Vec<Keyed> {
        let mut v: Vec<Keyed> = self
            .retained
            .iter()
            .filter(|&&(t, _)| !self.expired(t))
            .map(|&(_, k)| k)
            .collect();
        v.sort_by(|a, b| b.key.total_cmp(&a.key));
        v.truncate(self.s);
        v
    }

    /// Iterates the retained `(arrival_index, keyed)` entries in arrival
    /// order (what a distributed site ships at end-of-stream).
    pub fn entries(&self) -> impl Iterator<Item = (u64, Keyed)> + '_ {
        self.retained.iter().copied()
    }
}

/// Centralized sliding-window weighted SWOR (self-clocked convenience
/// wrapper over [`RetainedSet`]).
#[derive(Debug)]
pub struct SlidingWindowSwor {
    set: RetainedSet,
    rng: Rng,
    time: u64,
}

impl SlidingWindowSwor {
    /// Creates a sampler of size `s` over the last `window` arrivals.
    pub fn new(s: usize, window: u64, seed: u64) -> Self {
        Self {
            set: RetainedSet::new(s, window),
            rng: Rng::new(seed),
            time: 0,
        }
    }

    /// Items observed so far.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Number of retained items (the structure whose steady-state size is
    /// `O(s·log(window/s))`; transiently up to 2× between amortized
    /// prunes).
    pub fn retained_len(&self) -> usize {
        self.set.len()
    }

    /// Feeds the next item (arrival index = observation count).
    pub fn observe(&mut self, item: Item) {
        let keyed = assign_key(item, &mut self.rng);
        self.time += 1;
        self.set.insert(self.time, keyed);
    }

    /// The weighted SWOR of the current window.
    pub fn sample(&self) -> Vec<Keyed> {
        self.set.sample()
    }
}

// ------------------------------------------------------- runtime nodes

/// Site→coordinator message of the distributed window sampler: one
/// retained candidate, shipped at end-of-stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowUp {
    /// The candidate with its precision-sampling key. The item's id is its
    /// global arrival index (the workload generators' convention), which
    /// the coordinator uses as the window clock.
    pub keyed: Keyed,
}

impl Meter for WindowUp {
    fn kind(&self) -> &'static str {
        "window_cand"
    }
    fn wire_bytes(&self) -> u64 {
        WINDOW_UP_BYTES
    }
}

/// Exact wire size of a [`WindowUp`] frame: tag, id, weight, key.
pub const WINDOW_UP_BYTES: u64 = 25;

const TAG_WINDOW_CAND: u8 = 0x31;

impl FrameCodec for WindowUp {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(TAG_WINDOW_CAND);
        buf.extend_from_slice(&self.keyed.item.id.to_le_bytes());
        buf.extend_from_slice(&self.keyed.item.weight.to_le_bytes());
        buf.extend_from_slice(&self.keyed.key.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Result<(Self, usize), WireError> {
        let tag = *buf.first().ok_or(WireError::Truncated)?;
        if tag != TAG_WINDOW_CAND {
            return Err(WireError::BadTag(tag));
        }
        let field = |at: usize| -> Result<u64, WireError> {
            buf.get(at..at + 8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                .ok_or(WireError::Truncated)
        };
        let id = field(1)?;
        let weight = f64::from_bits(field(9)?);
        let key = f64::from_bits(field(17)?);
        if !(weight > 0.0 && weight.is_finite() && key > 0.0 && key.is_finite()) {
            return Err(WireError::BadField);
        }
        Ok((
            WindowUp {
                keyed: Keyed::new(Item { id, weight }, key),
            },
            WINDOW_UP_BYTES as usize,
        ))
    }
}

/// Site node of the distributed sliding-window sampler: filters its
/// substream down to the locally s-undominated candidates and ships them at
/// end-of-stream (zero per-item messages).
#[derive(Debug)]
pub struct WindowSite {
    set: RetainedSet,
    rng: Rng,
}

impl WindowSite {
    /// Creates the site for samples of size `s` over the last `window`
    /// global arrivals, with a per-site key seed.
    pub fn new(s: usize, window: u64, seed: u64) -> Self {
        Self {
            set: RetainedSet::new(s, window),
            rng: Rng::new(seed),
        }
    }

    /// Number of currently retained candidates.
    pub fn retained_len(&self) -> usize {
        self.set.len()
    }
}

impl SiteNode for WindowSite {
    type Up = WindowUp;
    type Down = NoDown;

    fn observe(&mut self, item: Item, _out: &mut Vec<WindowUp>) {
        let keyed = assign_key(item, &mut self.rng);
        // The item id is the global arrival index; site-local dominance
        // (≥ s later *site* items with larger keys) implies global
        // dominance, because later site items are later global items and
        // the window is a suffix of arrivals.
        self.set.insert(item.id, keyed);
    }

    fn receive(&mut self, _msg: &NoDown) {}

    fn finish(&mut self, out: &mut Vec<WindowUp>) {
        out.extend(self.set.entries().map(|(_, keyed)| WindowUp { keyed }));
    }
}

/// Coordinator of the distributed sliding-window sampler: merges the
/// sites' retained candidates and answers with the window sample, expired
/// by the largest arrival index across all sites. Incoming candidates are
/// buffered and folded into the retained structure in batches, so a
/// receive costs O(1) amortized instead of a full re-sort per message.
#[derive(Debug)]
pub struct WindowCoordinator {
    set: RetainedSet,
    /// Candidates not yet folded into `set` (merged on the next batch
    /// boundary; queries consult both).
    pending: Vec<(u64, Keyed)>,
    received: u64,
}

/// How many buffered candidates trigger a batch merge in
/// [`WindowCoordinator`].
const MERGE_BATCH: usize = 1024;

impl WindowCoordinator {
    /// Creates the coordinator for samples of size `s` over the last
    /// `window` global arrivals.
    pub fn new(s: usize, window: u64) -> Self {
        Self {
            set: RetainedSet::new(s, window),
            pending: Vec::new(),
            received: 0,
        }
    }

    /// Every in-window retained candidate, un-truncated — what a tree
    /// aggregator syncs to the root, so that entries valid for the
    /// *global* window watermark (which only the root can apply) are
    /// never displaced by a premature local top-`s` cut.
    pub fn window_entries(&self) -> Vec<Keyed> {
        let max_index = self
            .pending
            .iter()
            .map(|&(t, _)| t)
            .fold(self.set.max_index(), u64::max);
        let window = self.set.window;
        let in_window = |t: u64| t.saturating_add(window) > max_index;
        let mut v: Vec<Keyed> = self
            .set
            .entries()
            .filter(|&(t, _)| in_window(t))
            .map(|(_, k)| k)
            .collect();
        v.extend(
            self.pending
                .iter()
                .filter(|&&(t, _)| in_window(t))
                .map(|&(_, k)| k),
        );
        v
    }

    /// The current window sample (exact once every site has finished):
    /// top-`s` keys among the in-window candidates.
    pub fn sample(&self) -> Vec<Keyed> {
        let mut v = self.window_entries();
        v.sort_by(|a, b| b.key.total_cmp(&a.key));
        v.truncate(self.set.s);
        v
    }

    /// Candidate messages received.
    pub fn received(&self) -> u64 {
        self.received
    }
}

impl CoordinatorNode for WindowCoordinator {
    type Up = WindowUp;
    type Down = NoDown;

    fn receive(&mut self, _from: usize, msg: WindowUp, _out: &mut Outbox<NoDown>) {
        self.received += 1;
        self.pending.push((msg.keyed.item.id, msg.keyed));
        if self.pending.len() >= MERGE_BATCH {
            self.set.merge_from(self.pending.drain(..));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_is_min_window_s() {
        let mut sw = SlidingWindowSwor::new(3, 10, 1);
        for i in 0..2u64 {
            sw.observe(Item::unit(i));
        }
        assert_eq!(sw.sample().len(), 2);
        for i in 2..50u64 {
            sw.observe(Item::unit(i));
        }
        assert_eq!(sw.sample().len(), 3);
    }

    #[test]
    fn sample_only_contains_window_items() {
        let window = 20u64;
        let mut sw = SlidingWindowSwor::new(4, window, 2);
        for i in 0..500u64 {
            sw.observe(Item::new(i, 1.0 + (i % 3) as f64));
        }
        for k in sw.sample() {
            assert!(k.item.id >= 500 - window, "stale item {}", k.item.id);
        }
    }

    #[test]
    fn retained_is_logarithmic_not_linear() {
        let window = 4096u64;
        let mut sw = SlidingWindowSwor::new(8, window, 3);
        for i in 0..20_000u64 {
            sw.observe(Item::unit(i));
        }
        // Expected steady state ~ s·ln(window/s) ≈ 50; amortized pruning
        // allows a transient 2× on top — still far below the window.
        assert!(
            sw.retained_len() < 400,
            "retained {} not sublinear in window {window}",
            sw.retained_len()
        );
    }

    #[test]
    fn matches_full_resampling_distribution() {
        // Inclusion frequency of the heaviest in-window item must match a
        // fresh centralized SWOR over the window contents.
        use dwrs_core::centralized::{ExpClockSwor, StreamSampler};
        let window = 16u64;
        let s = 2usize;
        let n = 40u64;
        let trials = 30_000u64;
        let mut hits_sw = 0u64;
        let mut hits_ref = 0u64;
        // Weight pattern: one heavy item near the end of the window.
        let weight = |i: u64| if i == n - 3 { 8.0 } else { 1.0 };
        for t in 0..trials {
            let mut sw = SlidingWindowSwor::new(s, window, 10_000 + t);
            for i in 0..n {
                sw.observe(Item::new(i, weight(i)));
            }
            if sw.sample().iter().any(|k| k.item.id == n - 3) {
                hits_sw += 1;
            }
            let mut reference = ExpClockSwor::new(s, 50_000 + t);
            for i in (n - window)..n {
                reference.observe(Item::new(i, weight(i)));
            }
            if reference.sample().iter().any(|it| it.id == n - 3) {
                hits_ref += 1;
            }
        }
        let (p1, p2) = (
            hits_sw as f64 / trials as f64,
            hits_ref as f64 / trials as f64,
        );
        assert!(
            (p1 - p2).abs() < 0.02,
            "window sampler {p1} vs reference {p2}"
        );
    }

    #[test]
    fn window_up_round_trips_at_exact_size() {
        let msg = WindowUp {
            keyed: Keyed::new(Item::new(42, 3.5), 17.25),
        };
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        assert_eq!(buf.len() as u64, WINDOW_UP_BYTES);
        assert_eq!(Meter::wire_bytes(&msg), WINDOW_UP_BYTES);
        let (back, used) = WindowUp::decode(&buf).unwrap();
        assert_eq!(back, msg);
        assert_eq!(used as u64, WINDOW_UP_BYTES);
        assert!(WindowUp::decode(&[0xEE]).is_err());
        assert!(WindowUp::decode(&buf[..10]).is_err());
    }

    #[test]
    fn distributed_nodes_reproduce_centralized_sample() {
        // Round-robin split across k sites; after finish + merge, the
        // coordinator's sample must equal a centralized retained set fed
        // with the same keyed items.
        let (s, window, n, k) = (4usize, 64u64, 2_000u64, 3usize);
        let mut central = RetainedSet::new(s, window);
        let mut sites: Vec<WindowSite> = (0..k)
            .map(|i| WindowSite::new(s, window, 1000 + i as u64))
            .collect();
        let mut coord = WindowCoordinator::new(s, window);
        // Feed sites; mirror the exact keys into the central set.
        let mut out = Vec::new();
        for i in 0..n {
            let site = (i % k as u64) as usize;
            let item = Item::new(i, 1.0 + (i % 5) as f64);
            // Draw the key exactly as the site will (same rng stream):
            // observe through the site, then read the key back off its
            // retained set is fragile; instead give the central set its
            // own independent draw — distribution equality is checked by
            // `matches_full_resampling_distribution`; here we check the
            // exact merge logic with per-site keys.
            sites[site].observe(item, &mut out);
            assert!(out.is_empty(), "window sites send nothing per item");
        }
        let mut shipped = 0usize;
        let mut ob = Outbox::new();
        for site in sites.iter_mut() {
            let mut msgs = Vec::new();
            site.finish(&mut msgs);
            shipped += msgs.len();
            for m in msgs {
                coord.receive(0, m, &mut ob);
            }
        }
        assert!(ob.is_empty(), "window coordinator sends nothing down");
        // Message cost is the retained sets, not the stream.
        assert!(
            shipped < (n as usize) / 10,
            "shipped {shipped} of n = {n} items"
        );
        let sample = coord.sample();
        assert_eq!(sample.len(), s);
        // Every sampled item is in the global window.
        for kd in &sample {
            assert!(kd.item.id > n - 1 - window, "stale {}", kd.item.id);
        }
        // Exactness against a directly-merged central set with the same
        // per-site keys: rebuild by re-running the sites' entries.
        for site in &sites {
            central.merge_from(site.set.entries());
        }
        let want = central.sample();
        let got = coord.sample();
        let ids = |v: &[Keyed]| v.iter().map(|kd| kd.item.id).collect::<Vec<_>>();
        assert_eq!(ids(&got), ids(&want));
    }

    #[test]
    fn zero_based_index_zero_stays_in_window() {
        // Regression: with a 0-based arrival clock (item ids), the old
        // `max - window` cutoff saturated at 0 and expired index 0 while
        // it was still inside the window — the stream's first item could
        // never be sampled.
        let mut set = RetainedSet::new(8, 100);
        for i in 0..50u64 {
            set.insert(i, Keyed::new(Item::unit(i), 1.0 + i as f64));
        }
        let sample = set.sample();
        assert_eq!(sample.len(), 8);
        // Window (100) covers the whole stream: id 0 is a valid candidate
        // and the full in-window candidate count is 50.
        let mut all = RetainedSet::new(64, 100);
        for i in 0..50u64 {
            all.insert(i, Keyed::new(Item::unit(i), 1.0 + i as f64));
        }
        assert_eq!(all.sample().len(), 50, "every item is in-window");
        assert!(all.sample().iter().any(|kd| kd.item.id == 0));
        // And expiry still fires exactly at the boundary once max ≥ window.
        let mut set = RetainedSet::new(64, 10);
        for i in 0..25u64 {
            set.insert(i, Keyed::new(Item::unit(i), 1.0 + i as f64));
        }
        let ids: Vec<u64> = set.sample().iter().map(|kd| kd.item.id).collect();
        assert_eq!(ids.len(), 10);
        assert!(ids.iter().all(|&id| id >= 15), "{ids:?}");
    }

    #[test]
    fn out_of_order_indices_are_sorted_in_not_corrupting() {
        // Non-arrival-ordered ids (e.g. a hand-edited CSV): entries land
        // at their sorted position, so the window is well-defined over
        // the id order — no panic, no premature expiry.
        let mut set = RetainedSet::new(4, 100);
        for &i in &[5u64, 1, 9, 3, 7, 2, 8] {
            set.insert(i, Keyed::new(Item::unit(i), 1.0 + i as f64));
        }
        let ids: Vec<u64> = set.entries().map(|(t, _)| t).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "entries kept in id order");
        assert_eq!(set.sample().len(), 4);
        // Expiry still keys off the max id: nothing here is out of window.
        assert_eq!(set.len(), 7);
    }

    #[test]
    fn coordinator_batches_pending_merges() {
        // More candidates than MERGE_BATCH: the pending buffer must fold
        // into the retained set without losing entries, and queries must
        // see buffered candidates immediately.
        let (s, window) = (4usize, 1 << 20);
        let mut coord = WindowCoordinator::new(s, window);
        let mut ob = Outbox::new();
        let n = (MERGE_BATCH * 2 + 100) as u64;
        for i in 0..n {
            let keyed = Keyed::new(Item::new(i, 1.0), 1.0 + (i % 97) as f64);
            coord.receive(0, WindowUp { keyed }, &mut ob);
        }
        assert_eq!(coord.received(), n);
        let sample = coord.sample();
        assert_eq!(sample.len(), s);
        // Top keys are 97.0 + 1.0; the last (pending, unmerged) entries are
        // visible to the query.
        assert!(sample.iter().all(|kd| kd.key >= 97.0));
        assert!(!coord.window_entries().is_empty());
    }

    #[test]
    fn retained_set_rejects_degenerate_shapes() {
        assert!(std::panic::catch_unwind(|| RetainedSet::new(0, 10)).is_err());
        assert!(std::panic::catch_unwind(|| RetainedSet::new(1, 0)).is_err());
    }
}
