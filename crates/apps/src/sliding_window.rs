//! Weighted SWOR over a sequence-based **sliding window** — the extension
//! the paper's conclusion poses as an open problem ("extend our algorithm
//! for weighted sampling to the sliding window model").
//!
//! This module provides a centralized solution as a forward-looking
//! demonstration (the distributed message-optimal version remains open).
//! The idea follows the precision-sampling view: every item keeps its key
//! `v = w/t`; an item can appear in the top-`s` of **some** future window
//! only if fewer than `s` *later* items have larger keys (later items are in
//! every window that contains it). The retained set — keys that are
//! "s-undominated from the right" — has expected size `O(s·log(n/s))`, and
//! the window sample is read off by filtering to the window and taking the
//! top `s` keys.

use std::collections::VecDeque;

use dwrs_core::keys::assign_key;
use dwrs_core::rng::Rng;
use dwrs_core::{Item, Keyed};

/// Centralized sliding-window weighted SWOR.
#[derive(Debug)]
pub struct SlidingWindowSwor {
    window: u64,
    s: usize,
    rng: Rng,
    /// Retained `(arrival_time, keyed)` in arrival order; invariant: each
    /// entry has fewer than `s` later entries with larger keys.
    retained: VecDeque<(u64, Keyed)>,
    time: u64,
}

impl SlidingWindowSwor {
    /// Creates a sampler of size `s` over the last `window` arrivals.
    pub fn new(s: usize, window: u64, seed: u64) -> Self {
        assert!(s >= 1 && window >= 1);
        Self {
            window,
            s,
            rng: Rng::new(seed),
            retained: VecDeque::new(),
            time: 0,
        }
    }

    /// Items observed so far.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Number of retained items (the structure whose expected size is
    /// `O(s·log(window/s))`).
    pub fn retained_len(&self) -> usize {
        self.retained.len()
    }

    /// Feeds the next item.
    pub fn observe(&mut self, item: Item) {
        let keyed = assign_key(item, &mut self.rng);
        self.time += 1;
        self.retained.push_back((self.time, keyed));
        // Expire items that left the window.
        let cutoff = self.time.saturating_sub(self.window);
        while let Some(&(t, _)) = self.retained.front() {
            if t <= cutoff {
                self.retained.pop_front();
            } else {
                break;
            }
        }
        self.prune();
    }

    /// Re-establishes the dominance invariant: walk from newest to oldest,
    /// keeping an item iff fewer than `s` kept-later items have larger keys
    /// (equivalently: its key beats the s-th largest among later keys).
    fn prune(&mut self) {
        let mut later_keys: Vec<f64> = Vec::with_capacity(self.s);
        let mut keep = VecDeque::with_capacity(self.retained.len());
        for &(t, keyed) in self.retained.iter().rev() {
            let dominated = later_keys.len() >= self.s && keyed.key <= later_keys[self.s - 1];
            if !dominated {
                keep.push_front((t, keyed));
                // Insert into the sorted (descending) top-s of later keys.
                let pos = later_keys.partition_point(|&k| k > keyed.key);
                if pos < self.s {
                    later_keys.insert(pos, keyed.key);
                    later_keys.truncate(self.s);
                }
            }
        }
        self.retained = keep;
    }

    /// The weighted SWOR of the current window: top-`s` keys among retained
    /// in-window items (every in-window item not retained is provably beaten
    /// by `s` in-window items).
    pub fn sample(&self) -> Vec<Keyed> {
        let mut v: Vec<Keyed> = self.retained.iter().map(|&(_, k)| k).collect();
        v.sort_by(|a, b| b.key.total_cmp(&a.key));
        v.truncate(self.s);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_is_min_window_s() {
        let mut sw = SlidingWindowSwor::new(3, 10, 1);
        for i in 0..2u64 {
            sw.observe(Item::unit(i));
        }
        assert_eq!(sw.sample().len(), 2);
        for i in 2..50u64 {
            sw.observe(Item::unit(i));
        }
        assert_eq!(sw.sample().len(), 3);
    }

    #[test]
    fn sample_only_contains_window_items() {
        let window = 20u64;
        let mut sw = SlidingWindowSwor::new(4, window, 2);
        for i in 0..500u64 {
            sw.observe(Item::new(i, 1.0 + (i % 3) as f64));
        }
        for k in sw.sample() {
            assert!(k.item.id >= 500 - window, "stale item {}", k.item.id);
        }
    }

    #[test]
    fn retained_is_logarithmic_not_linear() {
        let window = 4096u64;
        let mut sw = SlidingWindowSwor::new(8, window, 3);
        for i in 0..20_000u64 {
            sw.observe(Item::unit(i));
        }
        // Expected ~ s·ln(window/s) ≈ 8·6.2 ≈ 50; assert well below window.
        assert!(
            sw.retained_len() < 400,
            "retained {} not sublinear in window {window}",
            sw.retained_len()
        );
    }

    #[test]
    fn matches_full_resampling_distribution() {
        // Inclusion frequency of the heaviest in-window item must match a
        // fresh centralized SWOR over the window contents.
        use dwrs_core::centralized::{ExpClockSwor, StreamSampler};
        let window = 16u64;
        let s = 2usize;
        let n = 40u64;
        let trials = 30_000u64;
        let mut hits_sw = 0u64;
        let mut hits_ref = 0u64;
        // Weight pattern: one heavy item near the end of the window.
        let weight = |i: u64| if i == n - 3 { 8.0 } else { 1.0 };
        for t in 0..trials {
            let mut sw = SlidingWindowSwor::new(s, window, 10_000 + t);
            for i in 0..n {
                sw.observe(Item::new(i, weight(i)));
            }
            if sw.sample().iter().any(|k| k.item.id == n - 3) {
                hits_sw += 1;
            }
            let mut reference = ExpClockSwor::new(s, 50_000 + t);
            for i in (n - window)..n {
                reference.observe(Item::new(i, weight(i)));
            }
            if reference.sample().iter().any(|it| it.id == n - 3) {
                hits_ref += 1;
            }
        }
        let (p1, p2) = (
            hits_sw as f64 / trials as f64,
            hits_ref as f64 / trials as f64,
        );
        assert!(
            (p1 - p2).abs() < 0.02,
            "window sampler {p1} vs reference {p2}"
        );
    }
}
