//! Doc-sync: `docs/LOAD.md` must document every schedule, every fault
//! action, and every `BENCH_load.json` row key the harness actually
//! emits, and the CLI usage banner must advertise the same catalogs —
//! adding a schedule or widening the report without documenting it
//! fails CI.

use dwrs::load::{FAULT_NAMES, SCHEDULE_NAMES};

fn repo_file(rel: &str) -> String {
    let path = format!("{}/{}", env!("CARGO_MANIFEST_DIR"), rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

#[test]
fn every_schedule_is_documented() {
    let guide = repo_file("docs/LOAD.md");
    let usage = repo_file("crates/cli/src/args.rs");
    for name in SCHEDULE_NAMES {
        assert!(
            guide.contains(&format!("`{name}`")),
            "docs/LOAD.md does not document the '{name}' schedule"
        );
        assert!(
            usage.contains(name),
            "the CLI usage banner does not mention the '{name}' schedule"
        );
    }
}

#[test]
fn every_fault_action_is_documented() {
    let guide = repo_file("docs/LOAD.md");
    let usage = repo_file("crates/cli/src/args.rs");
    for name in FAULT_NAMES {
        assert!(
            guide.contains(&format!("`{name}`")),
            "docs/LOAD.md does not document the '{name}' fault action"
        );
        assert!(
            usage.contains(name),
            "the CLI usage banner does not mention the '{name}' fault action"
        );
    }
}

/// The top-level keys of an actual report row, extracted from the
/// serializer itself so the doc table can never drift from the code.
fn bench_row_keys() -> Vec<String> {
    let report = dwrs::load::LoadReport {
        schedule: "steady".into(),
        rate: 1,
        chaos: false,
        seed: 0,
        writers: 1,
        query_workers: 0,
        n: 1,
        fed: 1,
        delivered: 1,
        elapsed_s: 1.0,
        achieved_rate: 1.0,
        rate_error_pct: 0.0,
        queries: 0,
        scrapes: 0,
        query_errors: 0,
        latency: None,
        events: vec![],
        violations: vec![],
    };
    let json = report.to_json();
    let mut keys = Vec::new();
    let mut depth = 0usize;
    let mut rest = json.as_str();
    // Top-level keys only: a `"name":` immediately inside the outer
    // object. The row holds no string values containing `{`/`[`, so
    // bracket counting is exact here.
    while let Some(ix) = rest.find(['{', '[', '}', ']', '"']) {
        match rest.as_bytes()[ix] {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            _ => {
                let tail = &rest[ix + 1..];
                let end = tail.find('"').expect("closing quote");
                if depth == 1 && tail[end + 1..].starts_with(':') {
                    keys.push(tail[..end].to_string());
                }
                rest = &tail[end + 1..];
                continue;
            }
        }
        rest = &rest[ix + 1..];
    }
    keys
}

#[test]
fn every_bench_row_key_is_documented() {
    let keys = bench_row_keys();
    assert!(
        keys.len() >= 17,
        "BENCH_load.json row shrank unexpectedly: {keys:?}"
    );
    let guide = repo_file("docs/LOAD.md");
    for key in &keys {
        assert!(
            guide.contains(&format!("`{key}`")),
            "docs/LOAD.md does not document the BENCH_load.json key '{key}'"
        );
    }
}

#[test]
fn invariants_and_cross_references_are_present() {
    let guide = repo_file("docs/LOAD.md");
    for needle in [
        "merge_two",
        "Monotone watermarks",
        "ReattachExhausted",
        "load-smoke",
        "docs/DAEMON.md",
        "QuantileSketch",
    ] {
        assert!(guide.contains(needle), "docs/LOAD.md is missing {needle}");
    }
    let arch = repo_file("docs/ARCHITECTURE.md");
    assert!(
        arch.contains("dwrs-load"),
        "docs/ARCHITECTURE.md does not describe the load harness"
    );
}

#[test]
fn readme_links_the_guide() {
    let readme = repo_file("README.md");
    assert!(
        readme.contains("docs/LOAD.md"),
        "README.md does not link the load-harness guide"
    );
}
