//! Integration: the two applications (residual heavy hitters, L1 tracking)
//! meet their guarantees end-to-end over the simulator.

use dwrs::apps::l1::{run_tracker, FolkloreTracker, HyzTracker, L1Config, L1DupTracker};
use dwrs::apps::residual_hh::{
    exact_residual_heavy_hitters, recall, ResidualHeavyHitters, ResidualHhConfig,
};
use dwrs::core::Item;
use dwrs::workloads::{residual_skew, weighted_epochs, zipf_ranked};

#[test]
fn residual_hh_full_recall_on_skewed_streams() {
    let eps = 0.2;
    let k = 8;
    let mut failures = 0u32;
    let runs = 10u64;
    for run in 0..runs {
        let items = residual_skew(1_500, 4, 100 + run);
        let want = exact_residual_heavy_hitters(&items, eps);
        assert!(!want.is_empty(), "degenerate instance");
        let mut tracker = ResidualHeavyHitters::new(ResidualHhConfig::new(eps, 0.05, k), 200 + run);
        for (t, it) in items.iter().enumerate() {
            tracker.observe(t % k, *it);
        }
        if recall(&want, &tracker.query()) < 1.0 {
            failures += 1;
        }
    }
    // delta = 0.05 per query; 10 runs should essentially never fail twice.
    assert!(failures <= 1, "{failures}/{runs} runs missed a residual HH");
}

#[test]
fn residual_hh_recall_holds_mid_stream() {
    let eps = 0.25;
    let k = 4;
    let items = residual_skew(2_000, 3, 42);
    let mut tracker = ResidualHeavyHitters::new(ResidualHhConfig::new(eps, 0.05, k), 7);
    let mut worst: f64 = 1.0;
    for (t, it) in items.iter().enumerate() {
        tracker.observe(t % k, *it);
        if t > 100 && t % 250 == 0 {
            let want = exact_residual_heavy_hitters(&items[..=t], eps);
            worst = worst.min(recall(&want, &tracker.query()));
        }
    }
    assert!(worst >= 0.99, "mid-stream recall dropped to {worst}");
}

#[test]
fn residual_hh_output_size_bounded() {
    let eps = 0.1;
    let cfg = ResidualHhConfig::new(eps, 0.1, 4);
    let mut tracker = ResidualHeavyHitters::new(cfg.clone(), 3);
    for (t, it) in zipf_ranked(3_000, 1.3, 5).iter().enumerate() {
        tracker.observe(t % 4, *it);
    }
    assert!(tracker.query().len() <= cfg.output_size());
}

#[test]
fn l1_duplication_tracker_meets_accuracy() {
    let (eps, delta, k) = (0.2f64, 0.2f64, 4usize);
    let stream: Vec<(usize, Item)> = (0..400u64)
        .map(|i| ((i % k as u64) as usize, Item::new(i, 1.0 + (i % 5) as f64)))
        .collect();
    let mut ok = 0u32;
    let runs = 10u32;
    for run in 0..runs {
        let mut tracker = L1DupTracker::new(L1Config::new(eps, delta, k), 900 + run as u64);
        let (err, _) = run_tracker(&mut tracker, &stream, 40);
        if err <= eps {
            ok += 1;
        }
    }
    // Max-over-probes within eps is stricter than the per-probe guarantee;
    // still, the vast majority of runs must pass.
    assert!(ok >= 7, "only {ok}/{runs} runs met eps");
}

#[test]
fn l1_all_trackers_estimate_reasonably() {
    let k = 8;
    let n = 30_000u64;
    let stream: Vec<(usize, Item)> = (0..n)
        .map(|i| ((i % k as u64) as usize, Item::unit(i)))
        .collect();
    let mut ours = {
        let mut cfg = L1Config::new(0.15, 0.25, k);
        cfg.sample_size_override = Some(150);
        cfg.dup_override = Some(500);
        L1DupTracker::new(cfg, 1)
    };
    let mut folk = FolkloreTracker::new(0.15, k);
    let mut hyz = HyzTracker::new(0.15, k, 2);
    let (e_ours, m_ours) = run_tracker(&mut ours, &stream, 1_000);
    let (e_folk, m_folk) = run_tracker(&mut folk, &stream, 1_000);
    let (e_hyz, m_hyz) = run_tracker(&mut hyz, &stream, 1_000);
    assert!(e_folk <= 0.15 + 1e-9, "folklore err {e_folk}");
    assert!(e_hyz < 0.35, "hyz err {e_hyz}");
    assert!(e_ours < 0.5, "ours err {e_ours}");
    for (name, m) in [("ours", m_ours), ("folk", m_folk), ("hyz", m_hyz)] {
        assert!(m < n / 2, "{name} used {m} messages for {n} items");
        assert!(m > 0, "{name} used no messages");
    }
}

#[test]
fn hard_instance_forces_k_messages_per_epoch() {
    // Theorem 5's epoch instance: the tracker must speak Ω(k) per epoch.
    let k = 16;
    let eta = 4;
    let inst = weighted_epochs(k, eta);
    let mut tracker = ResidualHeavyHitters::new(ResidualHhConfig::new(0.25, 0.1, k), 5);
    for (site, it) in &inst {
        tracker.observe(*site, *it);
    }
    let floor = (k as u32 * eta) as u64;
    assert!(
        tracker.messages() >= floor,
        "messages {} below the per-epoch floor {floor}",
        tracker.messages()
    );
}

#[test]
fn sliding_window_extension_end_to_end() {
    use dwrs::apps::SlidingWindowSwor;
    let mut sw = SlidingWindowSwor::new(5, 100, 9);
    for it in zipf_ranked(5_000, 1.2, 11) {
        sw.observe(it);
    }
    let sample = sw.sample();
    assert_eq!(sample.len(), 5);
    for kd in &sample {
        assert!(kd.item.id >= 4_900, "stale item {}", kd.item.id);
    }
}
