//! Chaos integration against the live daemon, through the facade: a
//! seeded kill → query-mid-outage → reattach cycle must preserve sample
//! containment (merging the mid-outage snapshot into the final sample
//! surfaces nothing new), telemetry watermarks must never move backwards
//! across the fault, and a shutdown must drain every stream cleanly —
//! including slots left detached by a crash.

use std::collections::HashSet;
use std::thread;
use std::time::Duration;

use dwrs::core::ctrl::LiveQueryKind;
use dwrs::core::merge::merge_two;
use dwrs::core::swor::SworConfig;
use dwrs::core::Item;
use dwrs::load::{run_load, ChaosConfig, FaultAction, LoadConfig};
use dwrs::runtime::daemon::{AttachClient, CtrlClient, Daemon, DaemonConfig, RetryPolicy};
use dwrs::runtime::RuntimeConfig;
use dwrs::sim::swor_site;

const K: usize = 2;
const S: usize = 16;
const PER_SITE: u64 = 4_000;

/// A reattach policy quick enough for tests but with real backoff shape:
/// the daemon may not have processed the dead link yet when the next
/// incarnation first knocks.
fn quick_retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 10,
        base_ms: 1,
        cap_ms: 16,
        jitter_seed: 7,
    }
}

#[test]
fn kill_query_reattach_preserves_containment_and_watermarks() {
    let d = Daemon::bind("127.0.0.1:0", DaemonConfig::default()).expect("bind");
    let addr = d.local_addr();
    let mut ctrl = CtrlClient::connect(addr).expect("ctrl");
    ctrl.create("chaos", K as u32, S as u32, "swor")
        .expect("create");

    let cfg = SworConfig::new(S, K);
    let rcfg = RuntimeConfig::default();

    // Site 1 feeds its whole share in the background, unaffected by the
    // crash on site 0 — queries mid-outage see a genuinely live stream.
    let bg = thread::spawn(move || {
        let cfg = SworConfig::new(S, K);
        let mut c = AttachClient::attach(addr, "chaos", 1, swor_site(&cfg, 11, 1), &rcfg)
            .expect("attach site 1");
        for chunk in 0..(PER_SITE / 500) {
            c.feed((chunk * 500..(chunk + 1) * 500).map(|t| Item::unit(t * K as u64 + 1)))
                .expect("feed site 1");
            thread::sleep(Duration::from_millis(1));
        }
        c.finish().expect("finish site 1");
    });

    // Site 0: feed the first half, snapshot, then die without a close
    // handshake — the seeded crash.
    let mut c = AttachClient::attach(addr, "chaos", 0, swor_site(&cfg, 5, 0), &rcfg)
        .expect("attach site 0");
    c.feed((0..PER_SITE / 2).map(|t| Item::unit(t * K as u64)))
        .expect("feed first half");
    let mid = ctrl
        .snapshot("chaos", LiveQueryKind::CurrentSample, 0)
        .expect("mid snapshot");
    let items_before_crash = ctrl.metrics(0).expect("scrape").streams[0].items;
    drop(c.abort());

    // Mid-outage the stream keeps answering, and the watermark has not
    // regressed below what we saw before the crash.
    let outage = ctrl
        .snapshot("chaos", LiveQueryKind::CurrentSample, 0)
        .expect("snapshot during outage");
    assert!(outage.items >= mid.items, "watermark regressed mid-outage");
    let outage_items = ctrl.metrics(0).expect("scrape").streams[0].items;
    assert!(
        outage_items >= items_before_crash,
        "scrape watermark regressed"
    );

    // The next incarnation reattaches (retry absorbs the window where the
    // daemon has not yet reaped the dead link) and resumes the slot.
    let (mut c, _retries) = AttachClient::attach_with_retry(
        addr,
        "chaos",
        0,
        swor_site(&cfg, 6, 0),
        &rcfg,
        &quick_retry(),
    )
    .expect("reattach site 0");
    assert!(c.resumed(), "slot must come back resumable");
    assert!(c.prior_items() <= PER_SITE / 2, "crash cannot mint items");
    c.feed((PER_SITE / 2..PER_SITE).map(|t| Item::unit(t * K as u64)))
        .expect("feed second half");
    c.finish().expect("finish site 0");
    bg.join().expect("site 1");

    // Containment: merging the mid-crash snapshot into the final sample
    // surfaces no id the final sample does not already hold, and any
    // mid-snapshot entry that vanished was displaced by a key above the
    // final threshold.
    let fin = ctrl
        .snapshot("chaos", LiveQueryKind::CurrentSample, 0)
        .expect("final snapshot");
    assert!(fin.items >= outage.items, "final watermark regressed");
    let fin_ids: HashSet<u64> = fin.sample.iter().map(|e| e.item.id).collect();
    for entry in merge_two(&mid.sample, &fin.sample, S) {
        assert!(
            fin_ids.contains(&entry.item.id),
            "merge surfaced id {} absent from the final sample",
            entry.item.id
        );
    }
    for entry in &mid.sample {
        assert!(
            fin_ids.contains(&entry.item.id) || entry.key <= fin.u,
            "id {} (key {:.6e}) vanished without a displacing key above u {:.6e}",
            entry.item.id,
            entry.key,
            fin.u
        );
    }

    // Clean drain: kill-drop may have lost unflushed items, but nothing
    // can be manufactured, and both finished sites' flushed items arrive.
    let drained = ctrl.drain_stream("chaos").expect("drain");
    assert!(drained.items <= 2 * PER_SITE);
    assert!(drained.items > PER_SITE, "site 1 plus resumed site 0 items");
    assert_eq!(drained.sample.len(), S);
    d.shutdown();
}

#[test]
fn shutdown_drains_streams_with_crashed_slots() {
    let d = Daemon::bind("127.0.0.1:0", DaemonConfig::default()).expect("bind");
    let addr = d.local_addr();
    let mut ctrl = CtrlClient::connect(addr).expect("ctrl");
    ctrl.create("wounded", 1, 8, "swor").expect("create");

    let cfg = SworConfig::new(8, 1);
    let rcfg = RuntimeConfig::default();
    let mut c =
        AttachClient::attach(addr, "wounded", 0, swor_site(&cfg, 3, 0), &rcfg).expect("attach");
    c.feed((0..1_000).map(Item::unit)).expect("feed");
    // Crash and never come back: the slot is left detached-by-death.
    drop(c.abort());

    // Give the daemon a moment to observe the dead link, then the
    // graceful shutdown path must still drain the stream rather than
    // wedge on the crashed slot.
    thread::sleep(Duration::from_millis(50));
    d.shutdown();
    let drained = d.drained();
    let (name, snap) = drained
        .iter()
        .find(|(n, _)| n == "wounded")
        .expect("stream drained at shutdown");
    assert_eq!(name, "wounded");
    assert!(snap.items <= 1_000, "crash cannot mint items");
    assert!(!snap.sample.is_empty(), "flushed items survived the crash");
}

#[test]
fn facade_load_run_executes_chaos_and_passes_invariants() {
    let mut cfg = LoadConfig::new("facade-chaos");
    cfg.writers = 2;
    cfg.n = 20_000;
    cfg.rate = 40_000;
    cfg.query_workers = 1;
    cfg.chaos = Some(ChaosConfig { faults: 2 });
    cfg.seed = 99;
    let report = run_load(&cfg).expect("run");
    assert!(
        report.invariants_ok(),
        "violations: {:?}",
        report.violations
    );
    assert_eq!(report.events.len(), 2, "both planned faults executed");
    // Seeded plan: the first two actions of the cycle, in plan order.
    let actions: Vec<FaultAction> = report.events.iter().map(|e| e.action).collect();
    assert!(actions.contains(&FaultAction::KillClean));
    assert!(actions.contains(&FaultAction::KillDrop));
    assert!(report.delivered <= report.fed);
}
