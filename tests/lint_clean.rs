//! The workspace must stay clean under its own static-analysis pass.
//!
//! This is the enforcement point for the invariants `lint.toml` declares:
//! deleting a `// SAFETY:` comment, dropping the `EpollEvent` packed-repr
//! cfg-gate, introducing an undocumented wire tag, or nesting locks
//! against the declared order all fail this test (and `dwrs-lint --deny`
//! in CI) with a `file:line` diagnostic.

use std::path::Path;

use dwrs_lint::config::Config;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let cfg = Config::load(&root.join("lint.toml")).expect("lint.toml parses");
    let report = dwrs_lint::run(root, &cfg);
    assert!(
        report.files > 100,
        "suspiciously few files scanned ({}) — include roots wrong?",
        report.files
    );
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        report.render_text()
    );
}

#[test]
fn lint_config_declares_the_core_invariants() {
    // The config itself is part of the contract: the lock chains and hot
    // paths documented in docs/CONCURRENCY.md must actually be declared,
    // otherwise L003/L004 silently check nothing.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let cfg = Config::load(&root.join("lint.toml")).expect("lint.toml parses");
    assert!(
        cfg.lock_chains
            .iter()
            .any(|c| c.windows(2).any(|w| w[0] == "streams" && w[1] == "drained")),
        "daemon lock order streams -> drained must stay declared"
    );
    let hot: Vec<&str> = cfg.hot_functions.iter().map(|h| h.func.as_str()).collect();
    for f in ["site_worker", "coord_reactor", "site_loop", "observe"] {
        assert!(hot.contains(&f), "hot path {f} missing from lint.toml");
    }
    assert!(
        cfg.tag_namespaces.len() >= 4,
        "all four wire-tag namespaces must stay declared"
    );
    assert!(cfg.trace.is_some(), "trace catalog must stay declared");
}
