//! Driver-level properties of `run_scenario` (ISSUE 4 satellites):
//!
//! * **Cross-engine determinism** — with level sets disabled every
//!   precision-sampling key is drawn site-side from a seed-derived RNG
//!   whose consumption order is fixed by the site's own substream, and the
//!   coordinator's answer is the exact top-`s` of all drawn keys. The
//!   final sample is therefore a pure function of the `Scenario` seed:
//!   lockstep and threads must agree *bit for bit*, flat and tree alike,
//!   for arbitrary seeds/shapes — property-tested here.
//! * **Bounded memory** — a large-n streaming run must keep the
//!   dispatcher's queue depth inside its structural bound, with a resident
//!   input window that is a small constant independent of n.

use dwrs::core::Keyed;
use dwrs::runtime::{run_scenario, EngineKind, RuntimeConfig, Scenario, Topology, Workload};
use dwrs::sim::Partition;
use proptest::prelude::*;

fn key_bits(sample: &[Keyed]) -> Vec<(u64, u64)> {
    sample
        .iter()
        .map(|kd| (kd.item.id, kd.key.to_bits()))
        .collect()
}

fn run(sc: &Scenario) -> Vec<(u64, u64)> {
    let report = run_scenario(sc).expect("scenario run");
    assert!(report.invariants_ok(), "{:?}", report.violations);
    key_bits(&report.sample)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn same_seed_same_sample_across_engines_flat_and_tree(
        seed in any::<u64>(),
        groups in 1usize..3,
        k_per_group in 1usize..3,
        s in 1usize..7,
        n in 40u64..400,
        random_partition in any::<bool>(),
    ) {
        let k = groups * k_per_group;
        let partition = if random_partition {
            Partition::Random
        } else {
            Partition::RoundRobin
        };
        for topology in [
            Topology::Flat,
            Topology::Tree { groups, sync_every: 25 },
        ] {
            let base = Scenario::new(EngineKind::Lockstep, k, s)
                .with_n(n)
                .with_seed(seed)
                .with_workload(Workload::Uniform { lo: 1.0, hi: 50.0 })
                .with_partition(partition)
                .with_topology(topology)
                .with_level_sets(false)
                .with_runtime(RuntimeConfig::new().with_batch_max(4).with_queue_capacity(4));
            let lockstep = run(&base);
            let mut threads = base.clone();
            threads.engine = EngineKind::Threads;
            let threaded = run(&threads);
            prop_assert_eq!(
                &lockstep, &threaded,
                "engines disagree for seed {} topology {:?}", seed, topology
            );
            // And the run is reproducible at all.
            prop_assert_eq!(&threaded, &run(&threads));
        }
    }
}

#[test]
fn large_n_streaming_run_stays_inside_dispatcher_bounds() {
    // 2M items through the threads engine: the queue-depth statistics must
    // respect the structural bound, and the bounded input window must be a
    // vanishing fraction of the stream — the O(batch × queue) invariant
    // observed, not assumed.
    let n = 2_000_000u64;
    let sc = Scenario::new(EngineKind::Threads, 4, 16)
        .with_n(n)
        .with_workload(Workload::Unit)
        .with_partition(Partition::Skewed { hot: 0.5 });
    let report = run_scenario(&sc).expect("run");
    assert_eq!(report.items, n);
    assert!(report.invariants_ok(), "{:?}", report.violations);
    let d = report.dispatcher.expect("dispatcher stats");
    assert_eq!(d.items, n);
    assert!(
        d.peak_in_flight_frames <= d.in_flight_bound(),
        "queue depth {} breached the structural bound {}",
        d.peak_in_flight_frames,
        d.in_flight_bound()
    );
    // The resident input window is a constant ~100k items here — under
    // 10% of the 2M-item stream, and the same constant for a 100M-item
    // one (where it would be 0.1%).
    assert!(
        d.buffered_items_bound() * 10 < n,
        "input window {} is not a vanishing fraction of n = {n}",
        d.buffered_items_bound()
    );
}
