//! Property-based integration tests: protocol invariants under arbitrary
//! streams, weights, partitionings and seeds.

use dwrs::core::swor::{epoch_of, level_of, SworConfig};
use dwrs::core::topk::{Offer, TopK};
use dwrs::core::{Item, Keyed};
use dwrs::sim::{build_swor, build_swor_faithful};
use proptest::prelude::*;

/// Strategy: a stream of up to 300 items with weights spanning 5 orders of
/// magnitude, plus a site assignment. Weights respect the paper's standing
/// `w ≥ 1` convention (Section 2.1) — Lemma 1's bound is stated under it
/// (level 0 spans `[0, r)`, so sub-1 weights can exceed the `1/(4s)`
/// release fraction).
fn stream_strategy() -> impl Strategy<Value = (Vec<(usize, f64)>, u64, usize, usize)> {
    (
        proptest::collection::vec((0usize..4, 1.0f64..100_000.0), 1..300),
        any::<u64>(),
        1usize..6, // s
        1usize..5, // k (site indices are taken mod k)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sample_size_is_min_t_s_at_all_times((stream, seed, s, k) in stream_strategy()) {
        let mut runner = build_swor(SworConfig::new(s, k), seed);
        for (t, (site, w)) in stream.iter().enumerate() {
            runner.step(site % k, Item::new(t as u64, *w));
            let sample = runner.coordinator.sample();
            prop_assert_eq!(sample.len(), (t + 1).min(s));
            // Keys sorted descending, all finite positive.
            for win in sample.windows(2) {
                prop_assert!(win[0].key >= win[1].key);
            }
            for kd in &sample {
                prop_assert!(kd.key > 0.0 && kd.key.is_finite());
            }
        }
    }

    #[test]
    fn u_is_monotone_and_epochs_advance((stream, seed, s, k) in stream_strategy()) {
        let mut runner = build_swor(SworConfig::new(s, k), seed);
        let mut last_u = 0.0f64;
        let mut last_epoch: Option<i64> = None;
        for (t, (site, w)) in stream.iter().enumerate() {
            runner.step(site % k, Item::new(t as u64, *w));
            let u = runner.coordinator.u();
            prop_assert!(u >= last_u, "u regressed: {} -> {}", last_u, u);
            last_u = u;
            let e = runner.coordinator.epoch();
            if let (Some(prev), Some(cur)) = (last_epoch, e) {
                prop_assert!(cur >= prev, "epoch regressed");
            }
            if e.is_some() {
                last_epoch = e;
            }
        }
    }

    #[test]
    fn optimized_equals_faithful((stream, seed, s, k) in stream_strategy()) {
        let cfg = SworConfig::new(s, k);
        let mut fast = build_swor(cfg.clone(), seed);
        let mut slow = build_swor_faithful(cfg, seed);
        for (t, (site, w)) in stream.iter().enumerate() {
            fast.step(site % k, Item::new(t as u64, *w));
            slow.step(site % k, Item::new(t as u64, *w));
            let a: Vec<(u64, u64)> = fast.coordinator.sample().iter()
                .map(|kd| (kd.item.id, kd.key.to_bits())).collect();
            let b: Vec<(u64, u64)> = slow.coordinator.sample().iter()
                .map(|kd| (kd.item.id, kd.key.to_bits())).collect();
            prop_assert_eq!(a, b, "diverged at step {}", t);
        }
    }

    #[test]
    fn lemma1_release_fraction_bounded((stream, seed, s, k) in stream_strategy()) {
        let cfg = SworConfig::new(s, k);
        let mut runner = build_swor(cfg, seed);
        for (t, (site, w)) in stream.iter().enumerate() {
            runner.step(site % k, Item::new(t as u64, *w));
        }
        let frac = runner.coordinator.stats.max_release_fraction;
        // Lemma 1 at the coordinator's (conservative) accounting.
        prop_assert!(
            frac <= 1.0 / (4.0 * s as f64) + 1e-12,
            "release fraction {} exceeds 1/(4s)", frac
        );
    }

    #[test]
    fn delayed_delivery_preserves_sample_semantics(
        (stream, seed, s, k) in stream_strategy(),
        latency in 1u64..200
    ) {
        // The sample must remain exactly the top-s of all keys generated so
        // far regardless of broadcast latency. We verify the structural
        // parts: size, ordering and positivity at every step, plus that
        // total messages only grow vs instant delivery.
        let cfg = SworConfig::new(s, k);
        let mut instant = build_swor(cfg.clone(), seed);
        let mut delayed = build_swor(cfg, seed).with_latency(latency);
        for (t, (site, w)) in stream.iter().enumerate() {
            instant.step(site % k, Item::new(t as u64, *w));
            delayed.step(site % k, Item::new(t as u64, *w));
            prop_assert_eq!(
                delayed.coordinator.sample().len(),
                (t + 1).min(s)
            );
        }
        prop_assert!(
            delayed.metrics.up_total + 8 >= instant.metrics.up_total / 2,
            "delayed lost messages: {} vs {}",
            delayed.metrics.up_total, instant.metrics.up_total
        );
    }

    #[test]
    fn topk_matches_reference_sort(keys in proptest::collection::vec(0.0f64..1e12, 1..200), cap in 1usize..20) {
        let mut topk = TopK::new(cap);
        for (i, &key) in keys.iter().enumerate() {
            let outcome = topk.offer(Keyed::new(Item::new(i as u64, 1.0), key));
            match outcome {
                Offer::Inserted | Offer::Replaced(_) | Offer::Rejected => {}
            }
        }
        let got: Vec<f64> = topk.sorted_desc().iter().map(|kd| kd.key).collect();
        let mut expect = keys.clone();
        expect.sort_by(|a, b| b.total_cmp(a));
        expect.truncate(cap);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn level_of_is_consistent_with_bounds(w in 0.0001f64..1e15, r in 1.5f64..64.0) {
        let level = level_of(w, r);
        if level > 0 {
            // w ∈ [r^level, r^(level+1))
            prop_assert!(r.powi(level as i32) <= w * (1.0 + 1e-12));
            prop_assert!(w < r.powi(level as i32 + 1) * (1.0 + 1e-12));
        } else {
            prop_assert!(w < r);
        }
    }

    #[test]
    fn epoch_of_is_consistent(u in 0.0f64..1e15, r in 1.5f64..64.0) {
        match epoch_of(u, r) {
            None => prop_assert!(u < 1.0),
            Some(j) => {
                prop_assert!(j >= 0);
                let lo = r.powi(j as i32);
                let hi = r.powi(j as i32 + 1);
                prop_assert!(lo <= u * (1.0 + 1e-12) && u < hi * (1.0 + 1e-12));
            }
        }
    }
}
