//! Integration: the threaded runtime must be *distributionally equivalent*
//! to the lockstep simulator (ISSUE 2 satellite), with every engine now
//! driven through the unified scenario driver (`run_scenario`).
//!
//! The threaded engine delivers coordinator broadcasts asynchronously —
//! the delayed-delivery regime — so per-run message *counts* differ from
//! lockstep, but the sampling distribution may not: with fixed RNG seeds,
//! inclusion frequencies over many trials must pass the same
//! `dwrs-stats` calibration checks (chi², KS) against the lockstep
//! simulator on identical input.

use dwrs::core::exact::inclusion_probabilities;
use dwrs::core::Item;
use dwrs::runtime::{run_scenario, EngineKind, RuntimeConfig, Scenario, Workload};
use dwrs::stats::{chi2_two_sample, ks_two_sample};

/// Stream used throughout: 12 items with assorted weights (the same
/// instance `tests/distributed_vs_centralized.rs` validates against the
/// exact oracle).
const WEIGHTS: [f64; 12] = [3.0, 1.0, 7.0, 1.0, 2.0, 9.0, 1.0, 4.0, 2.0, 1.0, 5.0, 30.0];

const K: usize = 4;

fn items() -> Vec<Item> {
    WEIGHTS
        .iter()
        .enumerate()
        .map(|(i, &w)| Item::new(i as u64, w))
        .collect()
}

/// The fixed 12-item scenario: the in-memory workload adapter plus the
/// default round-robin partition reproduces the `i % K` site assignment
/// the oracle suite uses.
fn scenario(engine: EngineKind, s: usize, seed: u64) -> Scenario {
    // Tight pipeline: irrelevant for distribution, but keeps the traffic
    // regime close to lockstep on this tiny stream.
    Scenario::new(engine, K, s)
        .with_workload(Workload::items(items()))
        .with_seed(seed)
        .with_runtime(
            RuntimeConfig::new()
                .with_batch_max(1)
                .with_queue_capacity(1),
        )
}

fn sample_ids(engine: EngineKind, s: usize, seed: u64) -> Vec<u64> {
    let report = run_scenario(&scenario(engine, s, seed)).expect("run");
    assert!(report.invariants_ok(), "{:?}", report.violations);
    report.sample.iter().map(|kd| kd.item.id).collect()
}

#[test]
fn threaded_inclusion_matches_lockstep_chi2() {
    // Two-sample chi-square between lockstep and threaded inclusion counts
    // over many independent seeded runs.
    let s = 3;
    let trials = 4_000u64;
    let mut lockstep_counts = vec![0u64; WEIGHTS.len()];
    let mut threaded_counts = vec![0u64; WEIGHTS.len()];
    for t in 0..trials {
        for id in sample_ids(EngineKind::Lockstep, s, 10_000 + t) {
            lockstep_counts[id as usize] += 1;
        }
        for id in sample_ids(EngineKind::Threads, s, 60_000 + t) {
            threaded_counts[id as usize] += 1;
        }
    }
    let r = chi2_two_sample(&lockstep_counts, &threaded_counts);
    assert!(
        r.p_value > 1e-4,
        "distributions differ: chi2 = {:.2}, p = {:.2e}\nlockstep {lockstep_counts:?}\nthreaded {threaded_counts:?}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn threaded_inclusion_matches_exact_oracle() {
    // Stronger than agreeing with lockstep: the threaded engine's
    // inclusion frequencies match the closed-form oracle within binomial
    // error, item by item.
    let s = 3;
    let trials = 4_000u64;
    let exact = inclusion_probabilities(&WEIGHTS, s);
    let mut counts = vec![0u64; WEIGHTS.len()];
    for t in 0..trials {
        for id in sample_ids(EngineKind::Threads, s, 300_000 + t) {
            counts[id as usize] += 1;
        }
    }
    for (i, &c) in counts.iter().enumerate() {
        let p = exact[i];
        let emp = c as f64 / trials as f64;
        let se = (p * (1.0 - p) / trials as f64).sqrt().max(1e-6);
        assert!(
            (emp - p).abs() < 5.5 * se,
            "item {i}: empirical {emp:.4} vs exact {p:.4} (se {se:.4})"
        );
    }
}

#[test]
fn threaded_top_key_distribution_matches_lockstep_ks() {
    // The largest sampled key is a continuous statistic of the whole run;
    // its distribution must agree between engines (two-sample KS).
    let s = 2;
    let trials = 1_500u64;
    let top_key = |engine: EngineKind, seed: u64| {
        let report = run_scenario(&scenario(engine, s, seed)).expect("run");
        report
            .sample
            .iter()
            .map(|kd| kd.key)
            .fold(f64::MIN, f64::max)
    };
    let mut lockstep_keys = Vec::with_capacity(trials as usize);
    let mut threaded_keys = Vec::with_capacity(trials as usize);
    for t in 0..trials {
        lockstep_keys.push(top_key(EngineKind::Lockstep, 700_000 + t));
        threaded_keys.push(top_key(EngineKind::Threads, 900_000 + t));
    }
    let r = ks_two_sample(&lockstep_keys, &threaded_keys);
    assert!(
        r.p_value > 1e-4,
        "top-key distributions differ: D = {:.4}, p = {:.2e}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn epoll_inclusion_matches_lockstep_chi2() {
    // The event-driven engine reorders deliveries differently from the
    // thread-per-site engines (readiness order instead of scheduler
    // order), but the delayed-delivery argument is the same: inclusion
    // frequencies must be distributionally indistinguishable from
    // lockstep. Fewer trials than the threads test — each trial sets up
    // real sockets — but plenty for the chi² power we assert.
    let s = 3;
    let trials = 1_200u64;
    let mut lockstep_counts = vec![0u64; WEIGHTS.len()];
    let mut epoll_counts = vec![0u64; WEIGHTS.len()];
    for t in 0..trials {
        for id in sample_ids(EngineKind::Lockstep, s, 20_000 + t) {
            lockstep_counts[id as usize] += 1;
        }
        for id in sample_ids(EngineKind::Epoll, s, 80_000 + t) {
            epoll_counts[id as usize] += 1;
        }
    }
    let r = chi2_two_sample(&lockstep_counts, &epoll_counts);
    assert!(
        r.p_value > 1e-4,
        "distributions differ: chi2 = {:.2}, p = {:.2e}\nlockstep {lockstep_counts:?}\nepoll {epoll_counts:?}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn epoll_inclusion_matches_exact_oracle() {
    // Item-by-item agreement with the closed-form inclusion
    // probabilities, within binomial error.
    let s = 3;
    let trials = 1_200u64;
    let exact = inclusion_probabilities(&WEIGHTS, s);
    let mut counts = vec![0u64; WEIGHTS.len()];
    for t in 0..trials {
        for id in sample_ids(EngineKind::Epoll, s, 400_000 + t) {
            counts[id as usize] += 1;
        }
    }
    for (i, &c) in counts.iter().enumerate() {
        let p = exact[i];
        let emp = c as f64 / trials as f64;
        let se = (p * (1.0 - p) / trials as f64).sqrt().max(1e-6);
        assert!(
            (emp - p).abs() < 5.5 * se,
            "item {i}: empirical {emp:.4} vs exact {p:.4} (se {se:.4})"
        );
    }
}

#[test]
fn epoll_top_key_distribution_matches_lockstep_ks() {
    let s = 2;
    let trials = 800u64;
    let top_key = |engine: EngineKind, seed: u64| {
        let report = run_scenario(&scenario(engine, s, seed)).expect("run");
        report
            .sample
            .iter()
            .map(|kd| kd.key)
            .fold(f64::MIN, f64::max)
    };
    let mut lockstep_keys = Vec::with_capacity(trials as usize);
    let mut epoll_keys = Vec::with_capacity(trials as usize);
    for t in 0..trials {
        lockstep_keys.push(top_key(EngineKind::Lockstep, 1_700_000 + t));
        epoll_keys.push(top_key(EngineKind::Epoll, 1_900_000 + t));
    }
    let r = ks_two_sample(&lockstep_keys, &epoll_keys);
    assert!(
        r.p_value > 1e-4,
        "top-key distributions differ: D = {:.4}, p = {:.2e}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn engines_agree_on_large_skewed_stream_invariants() {
    // One large skewed streaming run per engine through the driver:
    // identical final sample size, exact byte accounting on both sides
    // (the driver's own invariant checks), and bounded dispatch.
    let k = 4;
    let s = 16;
    let n = 100_000u64;
    for engine in [
        EngineKind::Lockstep,
        EngineKind::Threads,
        EngineKind::Tcp,
        EngineKind::Epoll,
    ] {
        let sc = Scenario::new(engine, k, s)
            .with_n(n)
            .with_seed(77)
            .with_workload(Workload::Zipf { alpha: 1.2 });
        let report = run_scenario(&sc).expect("run");
        assert_eq!(report.items, n, "engine {engine}");
        assert_eq!(report.sample.len(), s, "engine {engine}");
        // The driver checks sample size, exact per-kind byte
        // decomposition, broadcast accounting and key-vs-threshold
        // consistency; a healthy run reports no violations.
        assert!(
            report.invariants_ok(),
            "engine {engine}: {:?}",
            report.violations
        );
        // Spot-check the decomposition independently of the driver.
        let m = &report.metrics;
        assert_eq!(
            m.up_bytes,
            17 * m.kind("early") + 25 * m.kind("regular"),
            "engine {engine}: upstream byte accounting"
        );
        assert_eq!(
            m.down_bytes,
            5 * m.kind("level_saturated") + 9 * m.kind("update_epoch"),
            "engine {engine}: downstream byte accounting"
        );
        assert_eq!(m.down_total, m.broadcast_events * k as u64);
        // Concurrent engines stream through the bounded dispatcher.
        if engine != EngineKind::Lockstep {
            let d = report.dispatcher.expect("dispatcher stats");
            assert_eq!(d.items, n, "engine {engine}");
            assert!(
                d.peak_in_flight_frames <= d.in_flight_bound(),
                "engine {engine}: {} > bound {}",
                d.peak_in_flight_frames,
                d.in_flight_bound()
            );
        }
    }
}
