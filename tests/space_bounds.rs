//! Integration: the space claims of Proposition 6.
//!
//! * sites keep O(1) words (threshold + a level bitset);
//! * the optimized coordinator keeps O(s) items total (sample + at most `s`
//!   retained withheld items + O(log)-bit counters);
//! * the faithful Algorithm 2 coordinator instead accumulates up to `4rs`
//!   items per unsaturated level — the gap Proposition 6 removes.

use dwrs::core::swor::{levels::LevelBits, SworConfig};
use dwrs::sim::{build_swor, build_swor_faithful};
use dwrs::workloads::{pareto, zipf_ranked};

#[test]
fn optimized_coordinator_withholds_at_most_s_items() {
    // A heavy-tailed stream keeps many levels permanently unsaturated, so
    // the faithful coordinator accumulates withheld items without bound
    // while the optimized one retains at most s.
    let (k, s) = (4usize, 8usize);
    let items = pareto(40_000, 1.1, 1.0, 3);
    let mut fast = build_swor(SworConfig::new(s, k), 5);
    let mut slow = build_swor_faithful(SworConfig::new(s, k), 5);
    let mut max_fast = 0usize;
    let mut max_slow = 0usize;
    for (t, it) in items.iter().enumerate() {
        fast.step(t % k, *it);
        slow.step(t % k, *it);
        max_fast = max_fast.max(fast.coordinator.withheld_len());
        max_slow = max_slow.max(slow.coordinator.withheld_len());
    }
    assert!(
        max_fast <= s,
        "optimized coordinator retained {max_fast} > s = {s} withheld items"
    );
    assert!(
        max_slow > 4 * s,
        "faithful coordinator only reached {max_slow}; instance too easy"
    );
    // Despite the space gap, both answer queries identically (checked
    // elsewhere at every step; spot-check the final answer here).
    let a: Vec<u64> = fast
        .coordinator
        .sample()
        .iter()
        .map(|x| x.item.id)
        .collect();
    let b: Vec<u64> = slow
        .coordinator
        .sample()
        .iter()
        .map(|x| x.item.id)
        .collect();
    assert_eq!(a, b);
}

#[test]
fn site_state_is_constant_words() {
    // The saturation bitset covers every level that can occur for f64
    // weights in a handful of words.
    let mut bits = LevelBits::new();
    // Weights up to 1e300 at r = 2 span ~1000 levels -> 16 words.
    for level in 0..1_000u32 {
        bits.set(level);
    }
    assert!(bits.words() <= 16, "bitset used {} words", bits.words());
}

#[test]
fn query_cost_is_independent_of_stream_length() {
    // The query answer materializes O(s) entries no matter how long the
    // stream ran.
    let (k, s) = (4usize, 16usize);
    let mut runner = build_swor(SworConfig::new(s, k), 9);
    for (t, it) in zipf_ranked(100_000, 1.2, 7).iter().enumerate() {
        runner.step(t % k, *it);
    }
    let sample = runner.coordinator.sample();
    assert_eq!(sample.len(), s);
    assert!(runner.coordinator.withheld_len() <= s);
    assert_eq!(runner.coordinator.released_sample().len().min(s), s.min(s));
}
