//! Integration: everything is a pure function of its seed.

use dwrs::core::swor::SworConfig;
use dwrs::core::swr::SwrConfig;
use dwrs::sim::{assign_sites, build_swor, build_swr, Partition};
use dwrs::workloads;

#[test]
fn swor_runs_are_reproducible() {
    let run = |seed: u64| {
        let items = workloads::zipf_ranked(5_000, 1.4, 77);
        let mut runner = build_swor(SworConfig::new(8, 4), seed);
        let sites = assign_sites(Partition::Random, 4, items.len(), 5);
        runner.run(sites.into_iter().zip(items));
        let sample: Vec<(u64, u64)> = runner
            .coordinator
            .sample()
            .iter()
            .map(|k| (k.item.id, k.key.to_bits()))
            .collect();
        (
            sample,
            runner.metrics.total(),
            runner.metrics.by_kind.clone(),
        )
    };
    let a = run(123);
    let b = run(123);
    assert_eq!(a, b, "same seed must reproduce exactly");
    let c = run(124);
    assert_ne!(
        a.0, c.0,
        "different seeds must explore different randomness"
    );
}

#[test]
fn swr_runs_are_reproducible() {
    let run = |seed: u64| {
        let mut runner = build_swr(SwrConfig::new(6, 3), seed);
        for i in 0..4_000u64 {
            runner.step(
                (i % 3) as usize,
                dwrs::core::Item::new(i, 1.0 + (i % 7) as f64),
            );
        }
        let ids: Vec<u64> = runner.coordinator.sample().iter().map(|i| i.id).collect();
        (ids, runner.metrics.total())
    };
    assert_eq!(run(9), run(9));
}

#[test]
fn workloads_are_reproducible() {
    assert_eq!(
        workloads::zipf_ranked(1000, 1.5, 3),
        workloads::zipf_ranked(1000, 1.5, 3)
    );
    assert_eq!(
        workloads::pareto(1000, 1.1, 1.0, 4),
        workloads::pareto(1000, 1.1, 1.0, 4)
    );
    assert_eq!(
        workloads::query_log(1000, 50, 1.0, 2.0, 5),
        workloads::query_log(1000, 50, 1.0, 2.0, 5)
    );
    assert_ne!(
        workloads::pareto(1000, 1.1, 1.0, 4),
        workloads::pareto(1000, 1.1, 1.0, 5)
    );
}

#[test]
fn partitioning_is_reproducible() {
    let a = assign_sites(Partition::Random, 8, 10_000, 42);
    let b = assign_sites(Partition::Random, 8, 10_000, 42);
    assert_eq!(a, b);
}

#[test]
fn site_seeds_are_independent() {
    // Two sites in the same deployment must not mirror each other's keys:
    // run a single-site-at-a-time stream and check messages differ.
    let items = workloads::unit(4_000);
    let run_on_site = |site: usize| {
        let mut runner = build_swor(SworConfig::new(4, 2), 7);
        runner.run(items.iter().map(|it| (site, *it)));
        runner.metrics.kind("regular")
    };
    // Not a strict inequality requirement — but identical streams through
    // different site RNGs producing identical counts AND samples would be
    // suspicious. Compare sample key bits.
    let sample_bits = |site: usize| {
        let mut runner = build_swor(SworConfig::new(4, 2), 7);
        runner.run(items.iter().map(|it| (site, *it)));
        runner
            .coordinator
            .sample()
            .iter()
            .map(|k| k.key.to_bits())
            .collect::<Vec<u64>>()
    };
    let _ = (run_on_site(0), run_on_site(1));
    assert_ne!(sample_bits(0), sample_bits(1), "site RNG streams collide");
}
