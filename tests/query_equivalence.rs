//! Integration: the promoted application queries (ISSUE 5 tentpole) must
//! be *distributionally equivalent* across execution substrates, and the
//! heavy-hitter query must recover the exact oracle's required set —
//! mirroring `tests/runtime_equivalence.rs` for the SWOR base protocol.
//!
//! The threaded/TCP engines run in the delayed-delivery regime, so
//! message counts differ from lockstep, but each query's *answer
//! distribution* may not: L1 estimates pass two-sample KS/chi² checks
//! between engines, residual-heavy-hitter recall is 1.0 against the exact
//! streaming oracle on every engine, and the sliding-window sample — a
//! protocol with no feedback path — is bit-identical across engines.

use dwrs::runtime::{
    run_scenario, EngineKind, Query, QueryAnswer, RuntimeConfig, Scenario, Topology, Workload,
};
use dwrs::stats::{chi2_two_sample, ks_two_sample};

const K: usize = 4;

fn scenario(engine: EngineKind, query: Query, n: u64, seed: u64) -> Scenario {
    Scenario::new(engine, K, 16)
        .with_n(n)
        .with_seed(seed)
        .with_workload(Workload::Zipf { alpha: 1.1 })
        .with_query(query)
        .with_runtime(
            RuntimeConfig::new()
                .with_batch_max(8)
                .with_queue_capacity(8),
        )
}

fn l1_estimate(engine: EngineKind, seed: u64) -> f64 {
    let q = Query::L1 {
        eps: 0.25,
        delta: 0.25,
    };
    let report = run_scenario(&scenario(engine, q, 2_000, seed)).expect("run");
    assert!(report.invariants_ok(), "{:?}", report.violations);
    match report.answer {
        QueryAnswer::L1 { estimate, .. } => estimate,
        other => panic!("wrong answer shape {other:?}"),
    }
}

#[test]
fn l1_estimate_distribution_matches_lockstep_ks() {
    // The estimate W~ is a continuous statistic of the whole run; its
    // distribution over independent seeds must agree between the lockstep
    // and threaded substrates (two-sample KS).
    let trials = 250u64;
    let mut lockstep = Vec::with_capacity(trials as usize);
    let mut threaded = Vec::with_capacity(trials as usize);
    for t in 0..trials {
        lockstep.push(l1_estimate(EngineKind::Lockstep, 40_000 + t));
        threaded.push(l1_estimate(EngineKind::Threads, 80_000 + t));
    }
    let r = ks_two_sample(&lockstep, &threaded);
    assert!(
        r.p_value > 1e-4,
        "L1 estimate distributions differ: D = {:.4}, p = {:.2e}",
        r.statistic,
        r.p_value
    );
    // And both distributions center on the true weight within the
    // theorem's ε. The threaded runs carry a small positive bias on top
    // of lockstep's: stale saturation bits produce extra early
    // duplicates, which enlarge the withheld set feeding the u_query
    // statistic — the usual delayed-delivery inflation, bounded by the
    // pipeline depth and well inside ε at this configuration.
    let true_w = {
        let report =
            run_scenario(&scenario(EngineKind::Lockstep, Query::Swor, 2_000, 1)).expect("run");
        report.total_weight
    };
    for (name, est) in [("lockstep", &lockstep), ("threads", &threaded)] {
        let mean: f64 = est.iter().sum::<f64>() / est.len() as f64;
        let rel = (mean - true_w).abs() / true_w;
        assert!(rel < 0.25, "{name}: mean estimate off by {rel:.3}");
    }
}

#[test]
fn l1_estimate_error_buckets_match_chi2() {
    // Bucket the signed relative error into coarse bins and compare the
    // histograms between engines — a sharper shape check than KS alone on
    // the discrete tail behaviour.
    let trials = 250u64;
    let edges = [-0.25, -0.1, 0.0, 0.1, 0.25];
    let bucket = |rel: f64| -> usize { edges.iter().filter(|&&e| rel > e).count() };
    let mut lockstep = vec![0u64; edges.len() + 1];
    let mut threaded = vec![0u64; edges.len() + 1];
    let true_w = {
        let report =
            run_scenario(&scenario(EngineKind::Lockstep, Query::Swor, 2_000, 1)).expect("run");
        report.total_weight
    };
    for t in 0..trials {
        let rel = (l1_estimate(EngineKind::Lockstep, 140_000 + t) - true_w) / true_w;
        lockstep[bucket(rel)] += 1;
        let rel = (l1_estimate(EngineKind::Threads, 180_000 + t) - true_w) / true_w;
        threaded[bucket(rel)] += 1;
    }
    let r = chi2_two_sample(&lockstep, &threaded);
    assert!(
        r.p_value > 1e-4,
        "error-bucket histograms differ: chi2 = {:.2}, p = {:.2e}\n\
         lockstep {lockstep:?}\nthreads {threaded:?}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn rhh_recall_is_exact_on_every_engine_and_topology() {
    // The Theorem 4 guarantee end-to-end: on the residual-skew instance,
    // every required residual heavy hitter (per the exact streaming
    // oracle) appears in the candidate set — on every engine, flat and
    // tree.
    let query = Query::ResidualHh {
        eps: 0.2,
        delta: 0.05,
    };
    for engine in [EngineKind::Lockstep, EngineKind::Threads, EngineKind::Tcp] {
        for topology in [
            Topology::Flat,
            Topology::Tree {
                groups: 2,
                sync_every: 5_000,
            },
        ] {
            let sc = Scenario::new(engine, K, 16)
                .with_n(50_000)
                .with_seed(9)
                .with_workload(Workload::ResidualSkew { top: 4 })
                .with_topology(topology)
                .with_query(query);
            let report = run_scenario(&sc).expect("run");
            assert!(
                report.invariants_ok(),
                "{engine}/{topology:?}: {:?}",
                report.violations
            );
            match report.answer {
                QueryAnswer::ResidualHh {
                    required, recall, ..
                } => {
                    assert!(required > 0, "{engine}/{topology:?}: oracle found nothing");
                    assert!(
                        recall >= 0.999,
                        "{engine}/{topology:?}: recall {recall} of {required}"
                    );
                }
                other => panic!("wrong answer shape {other:?}"),
            }
        }
    }
}

#[test]
fn window_sample_is_bit_identical_across_engines() {
    // The sliding-window protocol has no coordinator→site feedback, so
    // identical seeds give identical per-site keys whatever the substrate
    // — the final window sample must agree bit for bit across all three
    // engines, seed by seed.
    let bits = |engine: EngineKind, seed: u64| -> Vec<(u64, u64)> {
        let q = Query::SlidingWindow { window: 3_000 };
        let report = run_scenario(&scenario(engine, q, 10_000, seed)).expect("run");
        assert!(report.invariants_ok(), "{:?}", report.violations);
        report
            .sample
            .iter()
            .map(|kd| (kd.item.id, kd.key.to_bits()))
            .collect()
    };
    for seed in [3u64, 77, 1234, 9999] {
        let lockstep = bits(EngineKind::Lockstep, seed);
        assert_eq!(lockstep.len(), 16, "seed {seed}");
        assert_eq!(lockstep, bits(EngineKind::Threads, seed), "seed {seed}");
        assert_eq!(lockstep, bits(EngineKind::Tcp, seed), "seed {seed}");
        // Everything sampled lies in the final window.
        assert!(lockstep.iter().all(|&(id, _)| id >= 10_000 - 3_000));
    }
}

#[test]
fn window_inclusion_matches_centralized_sampler() {
    // Distributional check against the centralized sliding-window sampler:
    // inclusion frequency of a planted heavy item near the window edge.
    use dwrs::apps::SlidingWindowSwor;
    use dwrs::core::Item;
    let (window, s, n) = (64u64, 4usize, 200u64);
    let heavy_id = n - 10;
    let weight = |i: u64| if i == heavy_id { 12.0 } else { 1.0 };
    let trials = 3_000u64;
    let (mut hits_runtime, mut hits_central) = (0u64, 0u64);
    for t in 0..trials {
        let items: Vec<Item> = (0..n).map(|i| Item::new(i, weight(i))).collect();
        let sc = Scenario::new(EngineKind::Lockstep, K, s)
            .with_workload(Workload::items(items.clone()))
            .with_seed(500_000 + t)
            .with_query(Query::SlidingWindow { window });
        let report = run_scenario(&sc).expect("run");
        if report.sample.iter().any(|kd| kd.item.id == heavy_id) {
            hits_runtime += 1;
        }
        let mut central = SlidingWindowSwor::new(s, window, 900_000 + t);
        for it in &items {
            central.observe(*it);
        }
        if central.sample().iter().any(|kd| kd.item.id == heavy_id) {
            hits_central += 1;
        }
    }
    let (p1, p2) = (
        hits_runtime as f64 / trials as f64,
        hits_central as f64 / trials as f64,
    );
    assert!(
        (p1 - p2).abs() < 0.035,
        "distributed window {p1:.3} vs centralized {p2:.3}"
    );
}
