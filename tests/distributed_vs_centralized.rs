//! Integration: the distributed weighted SWOR must be *distributionally
//! identical* to the centralized reference samplers, at the end of the
//! stream and at interior times (Definition 3 demands continuous validity).

use dwrs::core::centralized::{ARes, ExpClockSwor, StreamSampler};
use dwrs::core::exact::inclusion_probabilities;
use dwrs::core::swor::SworConfig;
use dwrs::core::Item;
use dwrs::sim::{build_swor, build_swor_faithful};
use dwrs::stats::chi2_two_sample;

/// Stream used throughout: 12 items with assorted weights.
const WEIGHTS: [f64; 12] = [3.0, 1.0, 7.0, 1.0, 2.0, 9.0, 1.0, 4.0, 2.0, 1.0, 5.0, 30.0];

fn run_distributed(s: usize, k: usize, seed: u64) -> Vec<u64> {
    let mut runner = build_swor(SworConfig::new(s, k), seed);
    for (i, &w) in WEIGHTS.iter().enumerate() {
        runner.step(i % k, Item::new(i as u64, w));
    }
    runner
        .coordinator
        .sample()
        .iter()
        .map(|kd| kd.item.id)
        .collect()
}

#[test]
fn inclusion_matches_exact_oracle() {
    let s = 3;
    let trials = 30_000u64;
    let exact = inclusion_probabilities(&WEIGHTS, s);
    let mut counts = vec![0u64; WEIGHTS.len()];
    for t in 0..trials {
        for id in run_distributed(s, 4, 10_000 + t) {
            counts[id as usize] += 1;
        }
    }
    for (i, &c) in counts.iter().enumerate() {
        let p = exact[i];
        let emp = c as f64 / trials as f64;
        let se = (p * (1.0 - p) / trials as f64).sqrt();
        assert!(
            (emp - p).abs() < 5.5 * se,
            "item {i}: empirical {emp:.4} vs exact {p:.4}"
        );
    }
}

#[test]
fn agrees_with_centralized_expclock_two_sample() {
    // Two-sample chi-square between distributed and centralized inclusion
    // counts over many independent runs.
    let s = 3;
    let trials = 20_000u64;
    let mut dist_counts = vec![0u64; WEIGHTS.len()];
    let mut cent_counts = vec![0u64; WEIGHTS.len()];
    for t in 0..trials {
        for id in run_distributed(s, 3, 400_000 + t) {
            dist_counts[id as usize] += 1;
        }
        let mut cent = ExpClockSwor::new(s, 800_000 + t);
        for (i, &w) in WEIGHTS.iter().enumerate() {
            cent.observe(Item::new(i as u64, w));
        }
        for it in cent.sample() {
            cent_counts[it.id as usize] += 1;
        }
    }
    let r = chi2_two_sample(&dist_counts, &cent_counts);
    assert!(
        r.p_value > 1e-4,
        "distributions differ: chi2 = {:.2}, p = {:.2e}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn agrees_with_efraimidis_spirakis() {
    // Heaviest-item inclusion frequency vs the classic sequential sampler.
    let s = 2;
    let trials = 20_000u64;
    let mut hits_dist = 0u64;
    let mut hits_es = 0u64;
    for t in 0..trials {
        if run_distributed(s, 2, 1_200_000 + t).contains(&11) {
            hits_dist += 1;
        }
        let mut es = ARes::new(s, 1_600_000 + t);
        for (i, &w) in WEIGHTS.iter().enumerate() {
            es.observe(Item::new(i as u64, w));
        }
        if es.sample().iter().any(|it| it.id == 11) {
            hits_es += 1;
        }
    }
    let (p1, p2) = (
        hits_dist as f64 / trials as f64,
        hits_es as f64 / trials as f64,
    );
    assert!((p1 - p2).abs() < 0.02, "dist {p1} vs ES {p2}");
}

#[test]
fn sample_is_valid_at_every_time_step() {
    // Definition 3: |sample| = min(t, s) at all times, and the mid-stream
    // inclusion frequencies match the oracle on the prefix.
    let s = 3;
    let probe_t = 7usize;
    let trials = 20_000u64;
    let exact = inclusion_probabilities(&WEIGHTS[..probe_t], s);
    let mut counts = vec![0u64; probe_t];
    for t in 0..trials {
        let mut runner = build_swor(SworConfig::new(s, 4), 2_000_000 + t);
        for (i, &w) in WEIGHTS.iter().enumerate().take(probe_t) {
            runner.step(i % 4, Item::new(i as u64, w));
            let expect = (i + 1).min(s);
            assert_eq!(runner.coordinator.sample().len(), expect);
        }
        for kd in runner.coordinator.sample() {
            counts[kd.item.id as usize] += 1;
        }
    }
    for (i, &c) in counts.iter().enumerate() {
        let p = exact[i];
        let emp = c as f64 / trials as f64;
        let se = (p * (1.0 - p) / trials as f64).sqrt();
        assert!(
            (emp - p).abs() < 5.5 * se,
            "prefix item {i}: {emp:.4} vs {p:.4}"
        );
    }
}

#[test]
fn faithful_and_optimized_coordinators_agree_through_runner() {
    // Same seeds end to end: query answers must be identical at every step.
    let cfg = SworConfig::new(5, 3);
    let items: Vec<Item> = (0..600u64)
        .map(|i| Item::new(i, 1.0 + ((i * 7) % 50) as f64))
        .collect();
    let mut fast = build_swor(cfg.clone(), 31337);
    let mut slow = build_swor_faithful(cfg, 31337);
    for (i, it) in items.iter().enumerate() {
        fast.step(i % 3, *it);
        slow.step(i % 3, *it);
        let a: Vec<(u64, u64)> = fast
            .coordinator
            .sample()
            .iter()
            .map(|k| (k.item.id, k.key.to_bits()))
            .collect();
        let b: Vec<(u64, u64)> = slow
            .coordinator
            .sample()
            .iter()
            .map(|k| (k.item.id, k.key.to_bits()))
            .collect();
        assert_eq!(a, b, "diverged at item {i}");
    }
    // Message counts may differ slightly: the optimized coordinator's `S`
    // (and therefore u and the epoch broadcasts) can transiently deviate
    // from the faithful one even though query answers are identical —
    // that is precisely the scope of Proposition 6's "without changing its
    // output behavior". They must stay within a narrow band.
    let (a, b) = (fast.metrics.up_total as f64, slow.metrics.up_total as f64);
    assert!(
        (a - b).abs() <= 0.2 * a.max(b) + 8.0,
        "message counts diverged too far: optimized {a} vs faithful {b}"
    );
}

#[test]
fn unweighted_special_case_matches_uniform() {
    // All-unit weights: inclusion must be s/n for every item.
    let s = 4;
    let n = 20usize;
    let trials = 20_000u64;
    let mut counts = vec![0u64; n];
    for t in 0..trials {
        let mut runner = build_swor(SworConfig::new(s, 4), 3_000_000 + t);
        for i in 0..n {
            runner.step(i % 4, Item::unit(i as u64));
        }
        for kd in runner.coordinator.sample() {
            counts[kd.item.id as usize] += 1;
        }
    }
    let p = s as f64 / n as f64;
    for (i, &c) in counts.iter().enumerate() {
        let emp = c as f64 / trials as f64;
        let se = (p * (1.0 - p) / trials as f64).sqrt();
        assert!((emp - p).abs() < 5.5 * se, "item {i}: {emp} vs {p}");
    }
}
