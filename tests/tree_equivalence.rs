//! Integration: the hierarchical fan-in runtime must be *distributionally
//! equivalent* to the lockstep fan-in tree (ISSUE 3 tentpole), with every
//! engine×topology combination now driven through the unified scenario
//! driver (`run_scenario`).
//!
//! The concurrent tree runs every group in the delayed-delivery regime and
//! syncs aggregators to the root in frame granularity, so per-run message
//! counts differ from the lockstep `FanInTree`; the root sampling
//! distribution may not: with fixed RNG seeds, root-sample inclusion
//! frequencies over many trials must pass the same `dwrs-stats`
//! calibration checks (chi², KS) against the lockstep tree on identical
//! input, and item-by-item against the exact oracle.
//!
//! Also asserted here: the bounded-staleness guarantee on root samples
//! (an aggregator's un-synced item lag never reaches `sync_every` plus one
//! frame's item window, and the final sync makes the root exact), and the
//! paper-accounting byte decomposition across all tiers.

use dwrs::core::exact::inclusion_probabilities;
use dwrs::core::Item;
use dwrs::runtime::{run_scenario, EngineKind, RuntimeConfig, Scenario, Topology, Workload};
use dwrs::stats::{chi2_two_sample, ks_two_sample};

/// Stream used by the distributional tests: the same 12-item instance the
/// flat equivalence suite validates against the exact oracle.
const WEIGHTS: [f64; 12] = [3.0, 1.0, 7.0, 1.0, 2.0, 9.0, 1.0, 4.0, 2.0, 1.0, 5.0, 30.0];

fn items() -> Vec<Item> {
    WEIGHTS
        .iter()
        .enumerate()
        .map(|(i, &w)| Item::new(i as u64, w))
        .collect()
}

/// 2 groups × 2 sites over the fixed 12-item stream; sync every item so
/// even the tiny stream syncs. Round-robin over 4 global sites reproduces
/// the `i % 4` assignment (global site `i` is site `i % 2` of group
/// `i / 2`).
fn scenario(engine: EngineKind, s: usize, seed: u64) -> Scenario {
    Scenario::new(engine, 4, s)
        .with_workload(Workload::items(items()))
        .with_seed(seed)
        .with_topology(Topology::Tree {
            groups: 2,
            sync_every: 1,
        })
        .with_runtime(
            RuntimeConfig::new()
                .with_batch_max(1)
                .with_queue_capacity(1),
        )
}

fn root_ids(engine: EngineKind, s: usize, seed: u64) -> Vec<u64> {
    let report = run_scenario(&scenario(engine, s, seed)).expect("tree run");
    assert!(report.invariants_ok(), "{:?}", report.violations);
    report.sample.iter().map(|kd| kd.item.id).collect()
}

#[test]
fn tree_inclusion_matches_lockstep_chi2() {
    // Two-sample chi-square between lockstep-tree and runtime-tree root
    // inclusion counts over many independent seeded runs.
    let s = 3;
    let trials = 3_000u64;
    let mut lockstep_counts = vec![0u64; WEIGHTS.len()];
    let mut threaded_counts = vec![0u64; WEIGHTS.len()];
    for t in 0..trials {
        for id in root_ids(EngineKind::Lockstep, s, 20_000 + t) {
            lockstep_counts[id as usize] += 1;
        }
        for id in root_ids(EngineKind::Threads, s, 80_000 + t) {
            threaded_counts[id as usize] += 1;
        }
    }
    let r = chi2_two_sample(&lockstep_counts, &threaded_counts);
    assert!(
        r.p_value > 1e-4,
        "distributions differ: chi2 = {:.2}, p = {:.2e}\nlockstep {lockstep_counts:?}\nthreaded {threaded_counts:?}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn tree_inclusion_matches_exact_oracle() {
    // Stronger than agreeing with the lockstep tree: the runtime tree's
    // root-sample inclusion frequencies match the closed-form oracle within
    // binomial error, item by item.
    let s = 3;
    let trials = 3_000u64;
    let exact = inclusion_probabilities(&WEIGHTS, s);
    let mut counts = vec![0u64; WEIGHTS.len()];
    for t in 0..trials {
        for id in root_ids(EngineKind::Threads, s, 500_000 + t) {
            counts[id as usize] += 1;
        }
    }
    for (i, &c) in counts.iter().enumerate() {
        let p = exact[i];
        let emp = c as f64 / trials as f64;
        let se = (p * (1.0 - p) / trials as f64).sqrt().max(1e-6);
        assert!(
            (emp - p).abs() < 5.5 * se,
            "item {i}: empirical {emp:.4} vs exact {p:.4} (se {se:.4})"
        );
    }
}

#[test]
fn tree_top_key_distribution_matches_lockstep_ks() {
    // The largest root-sampled key is a continuous statistic of the whole
    // run; its distribution must agree between substrates (two-sample KS).
    let s = 2;
    let trials = 1_200u64;
    let top_key = |engine: EngineKind, seed: u64| {
        let report = run_scenario(&scenario(engine, s, seed)).expect("tree run");
        report
            .sample
            .iter()
            .map(|kd| kd.key)
            .fold(f64::MIN, f64::max)
    };
    let mut lockstep_keys = Vec::with_capacity(trials as usize);
    let mut threaded_keys = Vec::with_capacity(trials as usize);
    for t in 0..trials {
        lockstep_keys.push(top_key(EngineKind::Lockstep, 700_000 + t));
        threaded_keys.push(top_key(EngineKind::Threads, 900_000 + t));
    }
    let r = ks_two_sample(&lockstep_keys, &threaded_keys);
    assert!(
        r.p_value > 1e-4,
        "top-key distributions differ: D = {:.4}, p = {:.2e}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn epoll_tree_inclusion_matches_lockstep_chi2() {
    // The event-driven tree multiplexes every group's sites onto one
    // shared reactor, so delivery interleavings differ from both the
    // lockstep tree and the thread-per-site tree — but the root sampling
    // distribution must not. Fewer trials than the threads test (each
    // trial builds real sockets), still ample chi² power.
    let s = 3;
    let trials = 600u64;
    let mut lockstep_counts = vec![0u64; WEIGHTS.len()];
    let mut epoll_counts = vec![0u64; WEIGHTS.len()];
    for t in 0..trials {
        for id in root_ids(EngineKind::Lockstep, s, 40_000 + t) {
            lockstep_counts[id as usize] += 1;
        }
        for id in root_ids(EngineKind::Epoll, s, 140_000 + t) {
            epoll_counts[id as usize] += 1;
        }
    }
    let r = chi2_two_sample(&lockstep_counts, &epoll_counts);
    assert!(
        r.p_value > 1e-4,
        "distributions differ: chi2 = {:.2}, p = {:.2e}\nlockstep {lockstep_counts:?}\nepoll {epoll_counts:?}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn epoll_tree_inclusion_matches_exact_oracle() {
    let s = 3;
    let trials = 600u64;
    let exact = inclusion_probabilities(&WEIGHTS, s);
    let mut counts = vec![0u64; WEIGHTS.len()];
    for t in 0..trials {
        for id in root_ids(EngineKind::Epoll, s, 600_000 + t) {
            counts[id as usize] += 1;
        }
    }
    for (i, &c) in counts.iter().enumerate() {
        let p = exact[i];
        let emp = c as f64 / trials as f64;
        let se = (p * (1.0 - p) / trials as f64).sqrt().max(1e-6);
        assert!(
            (emp - p).abs() < 5.5 * se,
            "item {i}: empirical {emp:.4} vs exact {p:.4} (se {se:.4})"
        );
    }
}

#[test]
fn tree_engines_agree_on_large_skewed_stream_invariants() {
    // One large skewed streaming run per engine: full sample at the root,
    // per-tier byte accounting exact, bounded staleness respected, final
    // sync exact — the driver checks all of it, and the explicit
    // assertions below re-verify independently.
    let topo = Topology::Tree {
        groups: 2,
        sync_every: 5_000,
    };
    let s = 16;
    let n = 200_000u64;
    for engine in [
        EngineKind::Lockstep,
        EngineKind::Threads,
        EngineKind::Tcp,
        EngineKind::Epoll,
    ] {
        let sc = Scenario::new(engine, 8, s)
            .with_n(n)
            .with_seed(77)
            .with_workload(Workload::Zipf { alpha: 1.2 })
            .with_topology(topo);
        let report = run_scenario(&sc).expect("run");
        assert_eq!(report.sample.len(), s, "engine {engine}");
        assert!(
            report.invariants_ok(),
            "engine {engine}: {:?}",
            report.violations
        );
        // Watermarks cover the whole stream.
        let covered: u64 = report.group_stats.iter().map(|st| st.items).sum();
        assert_eq!(covered, n, "engine {engine}");
        // Bounded staleness per group: un-synced lag stays under the sync
        // period plus one frame's item window (lockstep: window = 1).
        for (gi, st) in report.group_stats.iter().enumerate() {
            assert!(st.syncs >= 1, "engine {engine}: group {gi} never synced");
            assert!(
                st.max_unsynced < 5_000 + st.max_frame_items,
                "engine {engine}: group {gi} lag {} >= bound {}",
                st.max_unsynced,
                5_000 + st.max_frame_items
            );
        }
        // Final syncs make the root exact: the concurrent engines log each
        // group's last watermark equal to its item total.
        if engine != EngineKind::Lockstep {
            for (gi, st) in report.group_stats.iter().enumerate() {
                let last = report
                    .sync_log
                    .iter()
                    .rev()
                    .find(|&&(g, _)| g == gi)
                    .expect("group in sync log");
                assert_eq!(last.1, st.items, "engine {engine}: group {gi} not exact");
            }
        }
        // Paper-accounting byte decomposition across tiers: intra-group
        // frames (17 B early / 25 B regular / 5 B saturated / 9 B epoch)
        // plus SyncMsg frames (17 B header per sync + 24 B per entry).
        let m = &report.metrics;
        let syncs = report.syncs();
        assert_eq!(
            m.up_bytes,
            17 * m.kind("early") + 25 * m.kind("regular") + 17 * syncs + 24 * m.kind("sync"),
            "engine {engine}: upstream byte accounting"
        );
        assert_eq!(
            m.down_bytes,
            5 * m.kind("level_saturated") + 9 * m.kind("update_epoch"),
            "engine {engine}: downstream byte accounting"
        );
        // Broadcasts cost k_per_group within each group.
        assert_eq!(
            m.down_total,
            m.broadcast_events * 4,
            "engine {engine}: broadcast accounting"
        );
    }
}

#[test]
fn tree_sync_rate_trades_staleness_for_traffic() {
    // The g·s/sync_every message-rate tradeoff must be visible on the
    // runtime substrate exactly as in the lockstep tree.
    let run = |every: u64| {
        let sc = Scenario::new(EngineKind::Threads, 4, 8)
            .with_n(60_000)
            .with_seed(9)
            .with_workload(Workload::Zipf { alpha: 1.2 })
            .with_topology(Topology::Tree {
                groups: 2,
                sync_every: every,
            })
            .with_runtime(
                RuntimeConfig::new()
                    .with_batch_max(8)
                    .with_queue_capacity(8),
            );
        run_scenario(&sc).expect("run").metrics.kind("sync")
    };
    let chatty = run(100);
    let lazy = run(20_000);
    assert!(
        chatty > 10 * lazy.max(1),
        "sync period had no effect on root traffic: {chatty} vs {lazy}"
    );
}
