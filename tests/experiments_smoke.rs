//! Smoke test: every experiment in the harness runs to completion at Quick
//! scale — the full-scale outputs are recorded in EXPERIMENTS.md.

use dwrs_bench::{run_experiment, Scale, ALL_EXPERIMENTS};

#[test]
fn all_experiments_run_quick() {
    for id in ALL_EXPERIMENTS {
        assert!(run_experiment(id, Scale::Quick), "unknown experiment {id}");
    }
}

#[test]
fn unknown_experiment_rejected() {
    assert!(!run_experiment("e999", Scale::Quick));
}

#[test]
fn table5_alias_works() {
    assert!(run_experiment("table5", Scale::Quick));
}
