//! Integration: message-complexity scaling assertions (generous constants;
//! the precise curves are produced by the experiment harness).

use dwrs::core::swor::SworConfig;
use dwrs::core::swr::SwrConfig;
use dwrs::core::Item;
use dwrs::sim::{assign_sites, build_naive, build_swor, build_swr, Partition};
use dwrs::workloads::{uniform_weights, zipf_ranked};

fn swor_total(s: usize, k: usize, items: &[Item], seed: u64) -> u64 {
    let mut runner = build_swor(SworConfig::new(s, k), seed);
    let sites = assign_sites(Partition::RoundRobin, k, items.len(), seed);
    runner.run(sites.into_iter().zip(items.iter().copied()));
    runner.metrics.total()
}

#[test]
fn swor_messages_logarithmic_in_stream_length() {
    let (s, k) = (16, 16);
    let short = uniform_weights(1 << 12, 1.0, 2.0, 1);
    let long = uniform_weights(1 << 18, 1.0, 2.0, 2);
    let m_short = swor_total(s, k, &short, 3);
    let m_long = swor_total(s, k, &long, 4);
    // 64x more items; messages should grow like log W: well under 3x.
    assert!(
        m_long < 3 * m_short,
        "not logarithmic: {m_short} -> {m_long}"
    );
    // And strongly sublinear overall.
    assert!(m_long < (1 << 18) / 16, "too many messages: {m_long}");
}

#[test]
fn swor_within_constant_of_theorem3_bound() {
    for &(k, s) in &[(4usize, 16usize), (64, 16), (16, 64), (256, 32)] {
        let items = uniform_weights(1 << 14, 1.0, 2.0, k as u64);
        let w: f64 = items.iter().map(|i| i.weight).sum();
        let total = swor_total(s, k, &items, 5);
        let bound = k as f64 * (w / s as f64).ln() / (1.0 + k as f64 / s as f64).ln();
        let ratio = total as f64 / bound;
        // Constants: early messages cost 4rs per level; allow a wide but
        // finite envelope.
        assert!(
            ratio < 60.0,
            "k={k}, s={s}: ratio {ratio} (total {total}, bound {bound:.0})"
        );
    }
}

#[test]
fn swor_beats_naive_for_large_s_small_k_ratio() {
    // The Θ(s) gap: with k = 64 sites and s = 64, naive pays ~k·s·logW.
    let (k, s) = (64usize, 64usize);
    let items = uniform_weights(1 << 15, 1.0, 2.0, 9);
    let ours = swor_total(s, k, &items, 10);
    let mut naive = build_naive(s, k, 11);
    let sites = assign_sites(Partition::RoundRobin, k, items.len(), 12);
    naive.run(sites.into_iter().zip(items.iter().copied()));
    assert!(
        naive.metrics.total() > 2 * ours,
        "naive {} vs ours {ours}",
        naive.metrics.total()
    );
}

#[test]
fn swor_robust_to_adversarial_partitioning() {
    // Message complexity may shift by constants, not asymptotically, under
    // skewed partitioning.
    let (k, s) = (16usize, 16usize);
    let items = zipf_ranked(1 << 14, 1.2, 13);
    let mut totals = Vec::new();
    for partition in [
        Partition::RoundRobin,
        Partition::Random,
        Partition::SingleSite(0),
        Partition::Skewed { hot: 0.9 },
    ] {
        let mut runner = build_swor(SworConfig::new(s, k), 14);
        let sites = assign_sites(partition, k, items.len(), 15);
        runner.run(sites.into_iter().zip(items.iter().copied()));
        totals.push(runner.metrics.total());
    }
    let max = *totals.iter().max().unwrap() as f64;
    let min = *totals.iter().min().unwrap() as f64;
    assert!(
        max / min < 4.0,
        "partitioning sensitivity too high: {totals:?}"
    );
}

#[test]
fn swr_messages_sublinear_and_weight_independent() {
    // Total weight grows by 100x via weights, messages must stay ~log.
    let (k, s) = (8usize, 8usize);
    let small: Vec<Item> = (0..20_000u64).map(|i| Item::new(i, 1.0)).collect();
    let big: Vec<Item> = (0..20_000u64).map(|i| Item::new(i, 100.0)).collect();
    let run = |items: &[Item], seed: u64| {
        let mut runner = build_swr(SwrConfig::new(s, k), seed);
        let sites = assign_sites(Partition::RoundRobin, k, items.len(), seed);
        runner.run(sites.into_iter().zip(items.iter().copied()));
        runner.metrics.total()
    };
    let m_small = run(&small, 16);
    let m_big = run(&big, 17);
    assert!(m_small < 4_000, "unweighted SWR messages {m_small}");
    // 100x weight == +log(100) additive epochs, not 100x messages.
    assert!(
        m_big < 3 * m_small,
        "weight scaling broke SWR: {m_small} -> {m_big}"
    );
}

#[test]
fn broadcast_accounting_charges_k() {
    let (k, s) = (32usize, 4usize);
    let items = uniform_weights(4_000, 1.0, 2.0, 18);
    let mut runner = build_swor(SworConfig::new(s, k), 19);
    let sites = assign_sites(Partition::RoundRobin, k, items.len(), 20);
    runner.run(sites.into_iter().zip(items.iter().copied()));
    let m = &runner.metrics;
    assert_eq!(
        m.down_total,
        m.broadcast_events * k as u64,
        "each broadcast event must cost exactly k messages"
    );
}
