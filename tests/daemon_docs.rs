//! Doc-sync: `docs/DAEMON.md`'s wire reference must document every
//! control frame the codec actually implements — the acceptance gate for
//! the operator guide. Tag extraction goes through `dwrs_lint`'s L005
//! parser (`wire_tags_in`), the same token-level parse `dwrs-lint --deny`
//! enforces in CI, so this test and the lint can never disagree about
//! what counts as a wire tag.

use dwrs::core::ctrl::{LiveQueryKind, SNAPSHOT_ENTRY_BYTES};

fn repo_file(rel: &str) -> String {
    let path = format!("{}/{}", env!("CARGO_MANIFEST_DIR"), rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// `(name, "0xNN")` for every `const TAG_...: u8 = 0xNN;` in the control
/// codec source — a thin wrapper over the lint's L005 tag parser.
fn wire_tags() -> Vec<(String, String)> {
    dwrs_lint::wire_tags_in(&repo_file("crates/core/src/ctrl.rs"))
        .into_iter()
        .map(|t| (t.name, t.text))
        .collect()
}

#[test]
fn every_control_frame_is_documented() {
    let tags = wire_tags();
    assert_eq!(
        tags.len(),
        11,
        "control tag inventory changed — update this test and docs/DAEMON.md: {tags:?}"
    );
    let guide = repo_file("docs/DAEMON.md");
    for (name, hex) in &tags {
        assert!(
            guide.contains(name),
            "docs/DAEMON.md does not document the {name} frame"
        );
        assert!(
            guide.contains(hex),
            "docs/DAEMON.md does not show {name}'s tag byte {hex}"
        );
    }
}

#[test]
fn every_live_query_kind_is_documented() {
    let guide = repo_file("docs/DAEMON.md");
    for kind in LiveQueryKind::all() {
        assert!(
            guide.contains(kind.name()),
            "docs/DAEMON.md does not document the '{}' query kind",
            kind.name()
        );
        assert!(
            guide.contains(&format!("| {} |", kind.as_u8())),
            "docs/DAEMON.md does not show '{}'s wire byte {}",
            kind.name(),
            kind.as_u8()
        );
    }
}

#[test]
fn snapshot_entry_size_is_documented() {
    let guide = repo_file("docs/DAEMON.md");
    assert!(
        guide.contains(&format!(
            "`SNAPSHOT_ENTRY_BYTES` = {SNAPSHOT_ENTRY_BYTES} bytes"
        )),
        "docs/DAEMON.md does not state the {SNAPSHOT_ENTRY_BYTES}-byte snapshot entry size"
    );
}

/// `"dwrs_..."` string value for every `pub const METRIC_...` in the
/// telemetry name catalog.
fn metric_names() -> Vec<String> {
    let src = repo_file("crates/telemetry/src/names.rs");
    let mut names = Vec::new();
    for line in src.lines() {
        let line = line.trim();
        if !line.starts_with("pub const METRIC_") {
            continue;
        }
        let Some((_, rhs)) = line.split_once('"') else {
            continue;
        };
        let Some((value, _)) = rhs.split_once('"') else {
            continue;
        };
        names.push(value.to_string());
    }
    names
}

#[test]
fn every_metric_name_is_documented() {
    let names = metric_names();
    assert!(
        names.len() >= 18,
        "metric name inventory shrank unexpectedly: {names:?}"
    );
    let guide = repo_file("docs/DAEMON.md");
    for name in &names {
        assert!(
            guide.contains(&format!("`{name}`")),
            "docs/DAEMON.md does not document the {name} metric"
        );
    }
}

#[test]
fn every_trace_event_is_documented() {
    let guide = repo_file("docs/DAEMON.md");
    for kind in dwrs::telemetry::TraceKind::all() {
        assert!(
            guide.contains(&format!("| {} | `{}` |", kind.as_u8(), kind.name())),
            "docs/DAEMON.md trace catalog is missing code {} ({})",
            kind.as_u8(),
            kind.name()
        );
    }
}

#[test]
fn every_engine_is_documented() {
    // Each engine the CLI parses must appear in the usage banner and the
    // architecture guide — adding an engine without documenting it fails
    // here (the runtime's FromStr error message enumerates the full set).
    let usage = repo_file("crates/cli/src/args.rs");
    let arch = repo_file("docs/ARCHITECTURE.md");
    let err = "quantum".parse::<dwrs::runtime::EngineKind>().unwrap_err();
    for engine in ["lockstep", "threads", "tcp", "epoll"] {
        assert!(
            err.contains(engine),
            "EngineKind's parse error does not enumerate '{engine}': {err}"
        );
        assert!(
            usage.contains(engine),
            "CLI usage banner does not mention the '{engine}' engine"
        );
        assert!(
            arch.contains(engine),
            "docs/ARCHITECTURE.md does not mention the '{engine}' engine"
        );
    }
    assert!(
        arch.contains("Event-driven engine"),
        "docs/ARCHITECTURE.md is missing the event-driven engine section"
    );
}

#[test]
fn metrics_frame_is_cross_referenced() {
    let guide = repo_file("docs/DAEMON.md");
    for needle in [
        "TAG_METRICS",
        "TAG_METRICS_REPORT",
        "dwrs top",
        "dwrs metrics",
    ] {
        assert!(
            guide.contains(needle),
            "docs/DAEMON.md telemetry section is missing {needle}"
        );
    }
    let arch = repo_file("docs/ARCHITECTURE.md");
    assert!(
        arch.contains("dwrs-telemetry"),
        "docs/ARCHITECTURE.md does not describe the telemetry layer"
    );
}

#[test]
fn readme_links_the_guide() {
    let readme = repo_file("README.md");
    assert!(
        readme.contains("docs/DAEMON.md"),
        "README.md does not link the daemon operator guide"
    );
}
