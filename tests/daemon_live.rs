//! Integration: the long-lived daemon hosts concurrent named streams and
//! answers live queries mid-run (the paper's continuous-monitoring model
//! as a process), and a site reconnect preserves sample validity.

use std::thread;
use std::time::Duration;

use dwrs::apps::L1Site;
use dwrs::core::ctrl::LiveQueryKind;
use dwrs::core::merge::merge_two;
use dwrs::core::swor::SworConfig;
use dwrs::core::Item;
use dwrs::runtime::daemon::{AttachClient, CtrlClient, Daemon, DaemonConfig};
use dwrs::runtime::query::l1_site_seed;
use dwrs::runtime::{Query, RuntimeConfig};
use dwrs::sim::swor_site;

const CHUNK: u64 = 500;

/// Feeds `n` unit-weight items (ids `site, site+k, …` interleaved) in
/// chunks, with a short pause between chunks so the main thread's live
/// queries genuinely interleave with feeding.
fn feed_chunked<S>(mut client: AttachClient<S>, site: usize, k: u64, n: u64)
where
    S: dwrs::sim::SiteNode<Up = dwrs::core::swor::UpMsg, Down = dwrs::core::swor::DownMsg>,
{
    let mut fed = 0u64;
    while fed < n {
        let chunk = CHUNK.min(n - fed);
        client
            .feed((fed..fed + chunk).map(|t| Item::unit(t * k + site as u64)))
            .expect("feed");
        fed += chunk;
        thread::sleep(Duration::from_millis(1));
    }
    client.finish().expect("finish");
}

#[test]
fn two_streams_answer_live_queries_while_running() {
    let per_site = 5_000u64;
    let k = 2usize;
    let daemon = Daemon::bind("127.0.0.1:0", DaemonConfig::default()).expect("bind");
    let addr = daemon.local_addr();
    let mut ctrl = CtrlClient::connect(addr).expect("ctrl");
    ctrl.create("swor", k as u32, 16, "swor").expect("create");
    ctrl.create("l1", k as u32, 16, "l1:0.3,0.3")
        .expect("create");

    let l1_query = Query::parse("l1:0.3,0.3").unwrap();
    let s_eff = l1_query.sample_size(16);
    let ell = l1_query.duplication().unwrap();
    let rcfg = RuntimeConfig::default();

    // Two sites per stream, fed concurrently.
    let mut feeders = Vec::new();
    for i in 0..k {
        let swor_client = AttachClient::attach(
            addr,
            "swor",
            i,
            swor_site(&SworConfig::new(16, k), 7, i),
            &rcfg,
        )
        .expect("attach swor");
        feeders.push(thread::spawn(move || {
            feed_chunked(swor_client, i, k as u64, per_site)
        }));
        let l1_client = AttachClient::attach(
            addr,
            "l1",
            i,
            L1Site::new(&SworConfig::new(s_eff, k), ell, l1_site_seed(9, i)),
            &rcfg,
        )
        .expect("attach l1");
        feeders.push(thread::spawn(move || {
            feed_chunked(l1_client, i, k as u64, per_site)
        }));
    }

    // Interleaved live queries while both streams run: the
    // items-observed watermark must be monotone per stream, every
    // snapshot's sample must clear its own threshold u, and the L1
    // estimate must stay the right order of magnitude mid-stream (the
    // theorem's (1±ε) envelope holds per time step with prob 1−δ; with
    // ε = 0.3 we allow generous slack at arbitrary interleavings).
    let mut last_swor = 0u64;
    let mut last_l1 = 0u64;
    let mut mid_stream_seen = false;
    loop {
        let sw = ctrl
            .snapshot("swor", LiveQueryKind::CurrentSample, 0)
            .expect("live swor");
        assert!(sw.items >= last_swor, "watermark went backwards");
        last_swor = sw.items;
        assert!(sw.sample.iter().all(|kd| kd.key >= sw.u));
        assert_eq!(sw.sample.len() as u64, sw.items.min(16));

        let l1 = ctrl
            .snapshot("l1", LiveQueryKind::L1Now, 0)
            .expect("live l1");
        assert!(l1.items >= last_l1, "watermark went backwards");
        last_l1 = l1.items;
        assert_eq!(l1.ell, ell);
        if l1.items >= 1_000 && l1.items < 2 * per_site {
            mid_stream_seen = true;
            // Unit weights: true W at this instant is the watermark.
            let rel = (l1.estimate - l1.items as f64).abs() / l1.items as f64;
            assert!(
                rel < 0.75,
                "mid-stream L1 estimate off: {} vs {} items",
                l1.estimate,
                l1.items
            );
        }
        if last_swor == 2 * per_site && last_l1 == 2 * per_site {
            break;
        }
        thread::sleep(Duration::from_millis(1));
    }
    assert!(mid_stream_seen, "never observed a mid-stream L1 snapshot");
    for f in feeders {
        f.join().expect("feeder");
    }

    // window-now with an explicit window on the swor stream: only the
    // last `window` arrivals survive. Ids are arrival-interleaved across
    // the two sites, so id ≥ items − window is the survivor condition.
    let win = ctrl
        .snapshot("swor", LiveQueryKind::WindowNow, 400)
        .expect("window-now");
    let cutoff = win.items.saturating_sub(400);
    assert!(win.sample.iter().all(|kd| kd.item.id >= cutoff));

    // rhh-so-far: candidates are the top sample items by weight.
    let rhh = ctrl
        .snapshot("swor", LiveQueryKind::RhhSoFar, 0)
        .expect("rhh-so-far");
    for pair in rhh.sample.windows(2) {
        assert!(pair[0].item.weight >= pair[1].item.weight);
    }

    // Final drains: full watermark, both sites finished, tight L1.
    let fin_swor = ctrl.drain_stream("swor").expect("drain swor");
    assert_eq!(fin_swor.items, 2 * per_site);
    assert_eq!(fin_swor.sites_eof, 2);
    assert_eq!(fin_swor.sample.len(), 16);
    // An L1 stream drains to its own answer kind, not the raw sample.
    let fin_l1 = ctrl.drain_stream("l1").expect("drain l1");
    assert_eq!(fin_l1.kind, LiveQueryKind::L1Now);
    assert_eq!(fin_l1.items, 2 * per_site);
    assert_eq!(fin_l1.sample.len(), s_eff);
    let rel = (fin_l1.estimate - fin_l1.items as f64).abs() / fin_l1.items as f64;
    assert!(rel < 0.45, "final L1 estimate off: {}", fin_l1.estimate);
    assert!(daemon.shutdown().is_empty());
    assert_eq!(daemon.drained().len(), 2);
}

#[test]
fn reconnect_mid_stream_preserves_sample_validity() {
    let k = 2usize;
    let s = 8usize;
    let daemon = Daemon::bind("127.0.0.1:0", DaemonConfig::default()).expect("bind");
    let addr = daemon.local_addr();
    let mut ctrl = CtrlClient::connect(addr).expect("ctrl");
    ctrl.create("s", k as u32, s as u32, "swor")
        .expect("create");
    let cfg = SworConfig::new(s, k);
    let rcfg = RuntimeConfig::default();
    let skewed = |t: u64| Item::new(t, 1.0 + (t % 97) as f64);

    // Site 1 runs its whole share normally.
    let site1 = thread::spawn({
        let cfg = cfg.clone();
        move || {
            let mut c = AttachClient::attach(addr, "s", 1, swor_site(&cfg, 5, 1), &rcfg)
                .expect("attach site 1");
            c.feed((0..4_000u64).map(|t| skewed(2 * t + 1)))
                .expect("feed");
            c.finish().expect("finish");
        }
    });

    // Site 0: feed half, detach, reattach, feed the rest.
    let mut c = AttachClient::attach(addr, "s", 0, swor_site(&cfg, 5, 0), &rcfg).expect("attach");
    c.feed((0..2_000u64).map(|t| skewed(2 * t))).expect("feed");
    let (site0, _) = c.detach().expect("detach");

    // A mid-run snapshot taken while the slot is detached (site 1 may
    // still be feeding — any instant is a valid query point).
    let mid = ctrl
        .snapshot("s", LiveQueryKind::CurrentSample, 0)
        .expect("mid snapshot");
    assert!(mid.items >= 2_000);

    let mut c = AttachClient::attach(addr, "s", 0, site0, &rcfg).expect("reattach");
    assert!(c.resumed());
    assert_eq!(c.prior_items(), 2_000);
    c.feed((2_000..4_000u64).map(|t| skewed(2 * t)))
        .expect("feed");
    c.finish().expect("finish");
    site1.join().expect("site 1");

    let fin = ctrl.drain_stream("s").expect("drain");
    assert_eq!(fin.items, 8_000);
    assert_eq!(fin.sites_eof, 2);
    assert_eq!(fin.sample.len(), s);
    assert!(fin.sample.iter().all(|kd| kd.key >= fin.u));

    // Validity across the reconnect: the coordinator only ever discards
    // keys below its (monotone) threshold, so no mid-run sampled key can
    // outrank the final sample. Re-merging the mid-run snapshot through
    // the paper's mergeability operator must surface nothing new — every
    // entry of the merged top-s is an item the final sample already
    // holds (the two snapshots overlap, so ids repeat rather than
    // displace), and every mid-run item that fell out of the final
    // sample lost to a key at least as large as the final threshold.
    let merged = merge_two(&mid.sample, &fin.sample, s);
    let fin_ids: std::collections::HashSet<u64> = fin.sample.iter().map(|kd| kd.item.id).collect();
    assert!(
        merged.iter().all(|kd| fin_ids.contains(&kd.item.id)),
        "a mid-run-only key outranked the final sample after reconnect"
    );
    assert!(
        mid.sample
            .iter()
            .all(|kd| fin_ids.contains(&kd.item.id) || kd.key <= fin.u),
        "a displaced mid-run key exceeds the final threshold"
    );
    daemon.shutdown();
}
