//! Integration: the long-lived daemon hosts concurrent named streams and
//! answers live queries mid-run (the paper's continuous-monitoring model
//! as a process), a site reconnect preserves sample validity, and
//! `TAG_METRICS` scrapes are monotone mid-run and agree with final totals.

use std::thread;
use std::time::Duration;

use dwrs::apps::L1Site;
use dwrs::core::ctrl::LiveQueryKind;
use dwrs::core::merge::merge_two;
use dwrs::core::swor::SworConfig;
use dwrs::core::Item;
use dwrs::runtime::daemon::{AttachClient, CtrlClient, Daemon, DaemonConfig};
use dwrs::runtime::query::l1_site_seed;
use dwrs::runtime::{Query, RuntimeConfig};
use dwrs::sim::swor_site;

const CHUNK: u64 = 500;

/// Feeds `n` unit-weight items (ids `site, site+k, …` interleaved) in
/// chunks, with a short pause between chunks so the main thread's live
/// queries genuinely interleave with feeding.
fn feed_chunked<S>(mut client: AttachClient<S>, site: usize, k: u64, n: u64)
where
    S: dwrs::sim::SiteNode<Up = dwrs::core::swor::UpMsg, Down = dwrs::core::swor::DownMsg>,
{
    let mut fed = 0u64;
    while fed < n {
        let chunk = CHUNK.min(n - fed);
        client
            .feed((fed..fed + chunk).map(|t| Item::unit(t * k + site as u64)))
            .expect("feed");
        fed += chunk;
        thread::sleep(Duration::from_millis(1));
    }
    client.finish().expect("finish");
}

#[test]
fn two_streams_answer_live_queries_while_running() {
    let per_site = 5_000u64;
    let k = 2usize;
    let daemon = Daemon::bind("127.0.0.1:0", DaemonConfig::default()).expect("bind");
    let addr = daemon.local_addr();
    let mut ctrl = CtrlClient::connect(addr).expect("ctrl");
    ctrl.create("swor", k as u32, 16, "swor").expect("create");
    ctrl.create("l1", k as u32, 16, "l1:0.3,0.3")
        .expect("create");

    let l1_query = Query::parse("l1:0.3,0.3").unwrap();
    let s_eff = l1_query.sample_size(16);
    let ell = l1_query.duplication().unwrap();
    let rcfg = RuntimeConfig::default();

    // Two sites per stream, fed concurrently.
    let mut feeders = Vec::new();
    for i in 0..k {
        let swor_client = AttachClient::attach(
            addr,
            "swor",
            i,
            swor_site(&SworConfig::new(16, k), 7, i),
            &rcfg,
        )
        .expect("attach swor");
        feeders.push(thread::spawn(move || {
            feed_chunked(swor_client, i, k as u64, per_site)
        }));
        let l1_client = AttachClient::attach(
            addr,
            "l1",
            i,
            L1Site::new(&SworConfig::new(s_eff, k), ell, l1_site_seed(9, i)),
            &rcfg,
        )
        .expect("attach l1");
        feeders.push(thread::spawn(move || {
            feed_chunked(l1_client, i, k as u64, per_site)
        }));
    }

    // Interleaved live queries while both streams run: the
    // items-observed watermark must be monotone per stream, every
    // snapshot's sample must clear its own threshold u, and the L1
    // estimate must stay the right order of magnitude mid-stream (the
    // theorem's (1±ε) envelope holds per time step with prob 1−δ; with
    // ε = 0.3 we allow generous slack at arbitrary interleavings).
    let mut last_swor = 0u64;
    let mut last_l1 = 0u64;
    let mut mid_stream_seen = false;
    loop {
        let sw = ctrl
            .snapshot("swor", LiveQueryKind::CurrentSample, 0)
            .expect("live swor");
        assert!(sw.items >= last_swor, "watermark went backwards");
        last_swor = sw.items;
        assert!(sw.sample.iter().all(|kd| kd.key >= sw.u));
        assert_eq!(sw.sample.len() as u64, sw.items.min(16));

        let l1 = ctrl
            .snapshot("l1", LiveQueryKind::L1Now, 0)
            .expect("live l1");
        assert!(l1.items >= last_l1, "watermark went backwards");
        last_l1 = l1.items;
        assert_eq!(l1.ell, ell);
        if l1.items >= 1_000 && l1.items < 2 * per_site {
            mid_stream_seen = true;
            // Unit weights: true W at this instant is the watermark.
            let rel = (l1.estimate - l1.items as f64).abs() / l1.items as f64;
            assert!(
                rel < 0.75,
                "mid-stream L1 estimate off: {} vs {} items",
                l1.estimate,
                l1.items
            );
        }
        if last_swor == 2 * per_site && last_l1 == 2 * per_site {
            break;
        }
        thread::sleep(Duration::from_millis(1));
    }
    assert!(mid_stream_seen, "never observed a mid-stream L1 snapshot");
    for f in feeders {
        f.join().expect("feeder");
    }

    // window-now with an explicit window on the swor stream: only the
    // last `window` arrivals survive. Ids are arrival-interleaved across
    // the two sites, so id ≥ items − window is the survivor condition.
    let win = ctrl
        .snapshot("swor", LiveQueryKind::WindowNow, 400)
        .expect("window-now");
    let cutoff = win.items.saturating_sub(400);
    assert!(win.sample.iter().all(|kd| kd.item.id >= cutoff));

    // rhh-so-far: candidates are the top sample items by weight.
    let rhh = ctrl
        .snapshot("swor", LiveQueryKind::RhhSoFar, 0)
        .expect("rhh-so-far");
    for pair in rhh.sample.windows(2) {
        assert!(pair[0].item.weight >= pair[1].item.weight);
    }

    // Final drains: full watermark, both sites finished, tight L1.
    let fin_swor = ctrl.drain_stream("swor").expect("drain swor");
    assert_eq!(fin_swor.items, 2 * per_site);
    assert_eq!(fin_swor.sites_eof, 2);
    assert_eq!(fin_swor.sample.len(), 16);
    // An L1 stream drains to its own answer kind, not the raw sample.
    let fin_l1 = ctrl.drain_stream("l1").expect("drain l1");
    assert_eq!(fin_l1.kind, LiveQueryKind::L1Now);
    assert_eq!(fin_l1.items, 2 * per_site);
    assert_eq!(fin_l1.sample.len(), s_eff);
    let rel = (fin_l1.estimate - fin_l1.items as f64).abs() / fin_l1.items as f64;
    assert!(rel < 0.45, "final L1 estimate off: {}", fin_l1.estimate);
    assert!(daemon.shutdown().is_empty());
    assert_eq!(daemon.drained().len(), 2);
}

/// Satellite of the telemetry layer: `TAG_METRICS` scrapes answered
/// while a stream runs must be monotone (the per-stream items watermark
/// and query counter never go backwards, the report clock advances) and
/// the final scrape must agree exactly with the drain snapshot's totals.
/// All assertions are on the per-stream `StreamMetrics` section — the
/// registry is process-global and shared with the other tests in this
/// binary, so global counters are not comparable here.
#[test]
fn metrics_scrapes_are_monotone_and_match_final_totals() {
    use dwrs::telemetry::TraceKind;

    let per_site = 4_000u64;
    let k = 2usize;
    let daemon = Daemon::bind("127.0.0.1:0", DaemonConfig::default()).expect("bind");
    let addr = daemon.local_addr();
    let mut ctrl = CtrlClient::connect(addr).expect("ctrl");
    ctrl.create("tele", k as u32, 8, "swor").expect("create");
    let rcfg = RuntimeConfig::default();

    let mut feeders = Vec::new();
    for i in 0..k {
        let client = AttachClient::attach(
            addr,
            "tele",
            i,
            swor_site(&SworConfig::new(8, k), 3, i),
            &rcfg,
        )
        .expect("attach");
        feeders.push(thread::spawn(move || {
            feed_chunked(client, i, k as u64, per_site)
        }));
    }

    // Scrape while feeding. Each round also issues one live query so the
    // stream's latency sketch and query counter advance under our feet.
    let mut last_items = 0u64;
    let mut last_queries = 0u64;
    let mut last_now = 0u64;
    let mut queries_issued = 0u64;
    let mut mid_run_seen = false;
    loop {
        let report = ctrl.metrics(16).expect("scrape");
        assert!(report.now_nanos >= last_now, "report clock went backwards");
        assert!(report.streams_created >= 1);
        last_now = report.now_nanos;
        let sec = report
            .streams
            .iter()
            .find(|s| s.stream == "tele")
            .expect("per-stream section");
        assert_eq!(sec.query, "swor");
        assert!(sec.items >= last_items, "items watermark went backwards");
        assert!(sec.queries >= last_queries, "query counter went backwards");
        assert!(sec.queue_depth <= sec.queue_capacity);
        assert!(sec.sites_attached as usize + sec.sites_eof as usize <= k);
        if sec.items > 0 && sec.items < 2 * per_site {
            mid_run_seen = true;
        }
        let done = sec.items == 2 * per_site && sec.sites_eof as usize == k;
        last_items = sec.items;
        last_queries = sec.queries;
        if done {
            break;
        }
        ctrl.snapshot("tele", LiveQueryKind::CurrentSample, 0)
            .expect("live query");
        queries_issued += 1;
        thread::sleep(Duration::from_millis(1));
    }
    assert!(mid_run_seen, "never scraped mid-run");
    for f in feeders {
        f.join().expect("feeder");
    }

    // Final scrape: totals agree with what was fed, the latency summary
    // counts exactly the live queries we issued, and the trace ring holds
    // the stream's lifecycle in order.
    let report = ctrl.metrics(64).expect("final scrape");
    let sec = report
        .streams
        .iter()
        .find(|s| s.stream == "tele")
        .expect("per-stream section")
        .clone();
    assert_eq!(sec.items, 2 * per_site);
    assert_eq!(sec.sites_eof as usize, k);
    assert_eq!(sec.sites_attached, 0);
    assert_eq!(sec.queries, queries_issued);
    let lat = sec.latency.as_ref().expect("latency summary");
    assert_eq!(lat.count, queries_issued);
    assert!(lat.p50 > 0.0);
    assert!(lat.p99 >= lat.p50 && lat.max >= lat.p99);
    let codes: Vec<u8> = sec.events.iter().map(|e| e.code).collect();
    assert!(codes.contains(&TraceKind::Create.as_u8()), "create event");
    assert!(codes.contains(&TraceKind::Attach.as_u8()), "attach event");
    assert!(codes.contains(&TraceKind::Eof.as_u8()), "eof event");
    for w in sec.events.windows(2) {
        assert!(w[0].seq < w[1].seq, "trace seq not strictly increasing");
        assert!(w[0].nanos <= w[1].nanos, "trace time not monotone");
    }

    // Drain and cross-check: the scrape saw the same watermark the drain
    // snapshot reports, i.e. the telemetry path and the sampling path
    // agree on the final totals.
    let fin = ctrl.drain_stream("tele").expect("drain");
    assert_eq!(fin.items, sec.items);
    assert_eq!(u64::from(fin.sites_eof), u64::from(sec.sites_eof));
    daemon.shutdown();
}

#[test]
fn reconnect_mid_stream_preserves_sample_validity() {
    let k = 2usize;
    let s = 8usize;
    let daemon = Daemon::bind("127.0.0.1:0", DaemonConfig::default()).expect("bind");
    let addr = daemon.local_addr();
    let mut ctrl = CtrlClient::connect(addr).expect("ctrl");
    ctrl.create("s", k as u32, s as u32, "swor")
        .expect("create");
    let cfg = SworConfig::new(s, k);
    let rcfg = RuntimeConfig::default();
    let skewed = |t: u64| Item::new(t, 1.0 + (t % 97) as f64);

    // Site 1 runs its whole share normally.
    let site1 = thread::spawn({
        let cfg = cfg.clone();
        move || {
            let mut c = AttachClient::attach(addr, "s", 1, swor_site(&cfg, 5, 1), &rcfg)
                .expect("attach site 1");
            c.feed((0..4_000u64).map(|t| skewed(2 * t + 1)))
                .expect("feed");
            c.finish().expect("finish");
        }
    });

    // Site 0: feed half, detach, reattach, feed the rest.
    let mut c = AttachClient::attach(addr, "s", 0, swor_site(&cfg, 5, 0), &rcfg).expect("attach");
    c.feed((0..2_000u64).map(|t| skewed(2 * t))).expect("feed");
    let (site0, _) = c.detach().expect("detach");

    // A mid-run snapshot taken while the slot is detached (site 1 may
    // still be feeding — any instant is a valid query point).
    let mid = ctrl
        .snapshot("s", LiveQueryKind::CurrentSample, 0)
        .expect("mid snapshot");
    assert!(mid.items >= 2_000);

    let mut c = AttachClient::attach(addr, "s", 0, site0, &rcfg).expect("reattach");
    assert!(c.resumed());
    assert_eq!(c.prior_items(), 2_000);
    c.feed((2_000..4_000u64).map(|t| skewed(2 * t)))
        .expect("feed");
    c.finish().expect("finish");
    site1.join().expect("site 1");

    let fin = ctrl.drain_stream("s").expect("drain");
    assert_eq!(fin.items, 8_000);
    assert_eq!(fin.sites_eof, 2);
    assert_eq!(fin.sample.len(), s);
    assert!(fin.sample.iter().all(|kd| kd.key >= fin.u));

    // Validity across the reconnect: the coordinator only ever discards
    // keys below its (monotone) threshold, so no mid-run sampled key can
    // outrank the final sample. Re-merging the mid-run snapshot through
    // the paper's mergeability operator must surface nothing new — every
    // entry of the merged top-s is an item the final sample already
    // holds (the two snapshots overlap, so ids repeat rather than
    // displace), and every mid-run item that fell out of the final
    // sample lost to a key at least as large as the final threshold.
    let merged = merge_two(&mid.sample, &fin.sample, s);
    let fin_ids: std::collections::HashSet<u64> = fin.sample.iter().map(|kd| kd.item.id).collect();
    assert!(
        merged.iter().all(|kd| fin_ids.contains(&kd.item.id)),
        "a mid-run-only key outranked the final sample after reconnect"
    );
    assert!(
        mid.sample
            .iter()
            .all(|kd| fin_ids.contains(&kd.item.id) || kd.key <= fin.u),
        "a displaced mid-run key exceeds the final threshold"
    );
    daemon.shutdown();
}
