//! Smoke tests for the workspace wiring itself: the `dwrs` facade must
//! re-export every member crate under its documented name, and the
//! quickstart scenario from the crate docs must actually run.

use dwrs::core::swor::SworConfig;
use dwrs::core::Item;
use dwrs::sim::{assign_sites, build_swor, Partition};

/// Every documented facade path resolves and exposes a usable symbol.
#[test]
fn facade_reexports_resolve() {
    // dwrs::core
    let item = dwrs::core::Item::new(1, 2.0);
    assert_eq!(item.weight, 2.0);
    // dwrs::sim
    let sites = dwrs::sim::assign_sites(dwrs::sim::Partition::RoundRobin, 2, 4, 0);
    assert_eq!(sites, vec![0, 1, 0, 1]);
    // dwrs::workloads
    let items = dwrs::workloads::uniform_weights(8, 1.0, 2.0, 3);
    assert_eq!(items.len(), 8);
    // dwrs::apps
    let cfg = dwrs::apps::l1::L1Config::new(0.1, 0.25, 4);
    assert!(cfg.eps > 0.0);
    // dwrs::stats
    let d = dwrs::stats::tv_distance(&[0.5, 0.5], &[0.5, 0.5]);
    assert!(d.abs() < 1e-12);
    // dwrs::runtime and the root-level scenario driver re-exports.
    let sc = dwrs::Scenario::new(dwrs::EngineKind::Lockstep, 2, 4)
        .with_n(64)
        .with_workload(dwrs::Workload::Unit);
    let report = dwrs::run_scenario(&sc).expect("facade scenario run");
    assert_eq!(report.sample.len(), 4);
    assert!(report.invariants_ok());
    // Facade version string is wired through from the manifest.
    assert!(!dwrs::VERSION.is_empty());
}

/// The quickstart flow from the crate docs, at a different point in config
/// space (the doctest in `src/lib.rs` covers s=8, k=4, seed 42): build a
/// runner, stream weighted items, and check the sample plus message
/// optimality end-to-end through the facade.
#[test]
fn quickstart_scenario_runs() {
    let (s, k) = (16, 8);
    let mut runner = build_swor(SworConfig::new(s, k), 1234);
    let items: Vec<Item> = (0..20_000u64)
        .map(|i| Item::new(i, 1.0 + (i % 29) as f64))
        .collect();
    let sites = assign_sites(Partition::Random, k, items.len(), 9);
    runner.run(sites.into_iter().zip(items));

    let sample = runner.coordinator.sample();
    assert_eq!(sample.len(), s);
    assert!(
        runner.metrics.total() < 4_000,
        "protocol no longer message-optimal: {} messages for 20k items",
        runner.metrics.total()
    );
}
